// Command rescue-yat reproduces the paper's Figure 9 (yield-adjusted
// throughput of no-redundancy / core-sparing / Rescue across technology
// nodes and core-growth rates, for a chosen PWP-stagnation node) and
// Table 2 (component relative areas).
//
// Usage:
//
//	rescue-yat -areas
//	rescue-yat [-stagnate 90|65] [-bench list] [-warmup N] [-commit N]
//	           [-workers N] [-timeout D] [-progress] [-timing=false]
//
// SIGINT/SIGTERM stop the study between simulations and exit 130; a
// -timeout deadline exits 124.
package main

import (
	"flag"
	"fmt"
	"os"

	"rescue/internal/area"
	"rescue/internal/cli"
	"rescue/internal/flows"
)

func main() {
	areas := flag.Bool("areas", false, "print Table 2 and exit")
	stagnate := flag.Int("stagnate", 90, "node (nm) at which PWP stops improving (90 or 65)")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 23)")
	warmup := flag.Int64("warmup", 20_000, "warmup instructions per simulation")
	commit := flag.Int64("commit", 150_000, "measured instructions per simulation")
	timing := flag.Bool("timing", true, "print wall-clock timings (disable for golden diffs)")
	ff := cli.AddStudyFlags(flag.CommandLine)
	flag.Parse()
	ff.Validate()

	if *areas {
		printAreas()
		return
	}

	ctx, stop := ff.Context()
	defer stop()

	_, err := flows.YAT(ctx, os.Stdout, flows.YATOpts{
		StagnateNM: *stagnate,
		Bench:      *benches,
		Warmup:     *warmup,
		Commit:     *commit,
		Workers:    ff.Workers,
		Timing:     *timing,
	}, flows.Env{})
	if err != nil {
		cli.ExitErr(err)
	}
}

func printAreas() {
	b := area.BaselineWithScan()
	r := area.Rescue()
	fmt.Println("Table 2: Total areas and component relative areas (90nm)")
	fmt.Println()
	fmt.Printf("  Baseline core with scan: %6.1f mm²   (paper: ~96 mm²)\n", b.Total)
	fmt.Printf("  Rescue core:             %6.1f mm²   (paper: ~106.7 mm²)\n", r.Total)
	fmt.Println()
	fmt.Printf("  %-14s %9s %9s\n", "component", "pair mm²", "fraction")
	for g := area.Group(0); g < area.NumGroups; g++ {
		fmt.Printf("  %-14s %9.2f %8.1f%%\n", g, r.PairArea[g], r.Frac(g)*100)
	}
	fmt.Println()
	fmt.Println("  (paper's legible entries: int backend 15%, fp backend 21%, chipkill 40%)")
}
