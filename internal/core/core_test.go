package core

import (
	"testing"

	"rescue/internal/area"
	"rescue/internal/atpg"
	"rescue/internal/rtl"
	"rescue/internal/uarch"
	"rescue/internal/yield"
)

func buildSmall(t *testing.T, v rtl.Variant) *System {
	t.Helper()
	s, err := Build(rtl.Small(), v)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testCfg() atpg.GenConfig {
	cfg := atpg.DefaultGenConfig()
	cfg.MaxRandomWords = 24
	cfg.MaxBacktracks = 200
	return cfg
}

func TestBuildRescueAuditsClean(t *testing.T) {
	s := buildSmall(t, rtl.RescueDesign)
	if !s.Audit.OK() {
		t.Fatalf("rescue audit has %d violations", len(s.Audit.Violations))
	}
}

func TestBuildBaselineAuditsViolations(t *testing.T) {
	s := buildSmall(t, rtl.Baseline)
	if s.Audit.OK() {
		t.Fatal("baseline should violate ICI at map-out granularity")
	}
}

func TestGenerateTestsAndSummary(t *testing.T) {
	s := buildSmall(t, rtl.RescueDesign)
	tp := s.GenerateTests(testCfg())
	sum := s.Summary(tp)
	if sum.Coverage < 0.90 {
		t.Fatalf("coverage = %.3f", sum.Coverage)
	}
	if sum.Faults <= 0 || sum.ScanCells <= 0 || sum.Vectors <= 0 || sum.Cycles <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Variant != "rescue" {
		t.Fatalf("variant = %s", sum.Variant)
	}
}

func TestIsolationCampaignSmall(t *testing.T) {
	s := buildSmall(t, rtl.RescueDesign)
	tp := s.GenerateTests(testCfg())
	rep := s.IsolateCampaign(tp, 30, Stages(), 42, 2)
	total := rep.Isolated + rep.Wrong + rep.Ambiguous
	if total == 0 {
		t.Fatal("no faults sampled")
	}
	if rep.Wrong != 0 || rep.Ambiguous != 0 {
		t.Fatalf("isolation failures: %d wrong, %d ambiguous of %d (per stage %+v)",
			rep.Wrong, rep.Ambiguous, total, rep.PerStage)
	}
}

func TestMultiFaultIsolation(t *testing.T) {
	s := buildSmall(t, rtl.RescueDesign)
	tp := s.GenerateTests(testCfg())
	ok, total := s.MultiFaultIsolation(tp, 20, 3, 7, 2)
	if total != 20 {
		t.Fatalf("total = %d", total)
	}
	if ok < total-2 { // allow occasional all-undetected trials
		t.Fatalf("multi-fault isolation: %d/%d", ok, total)
	}
}

func TestMapOut(t *testing.T) {
	d, err := MapOut([]string{"FE0", "IQ1", "LSQ0"})
	if err != nil {
		t.Fatal(err)
	}
	want := uarch.Degraded{FEGroupsDisabled: 1, IntIQHalvesDown: 1, LSQHalvesDown: 1}
	if d != want {
		t.Fatalf("mapout = %+v", d)
	}
	if _, err := MapOut([]string{"CHIPKILL"}); err == nil {
		t.Fatal("chipkill must error")
	}
	if _, err := MapOut([]string{"FE0", "FE1"}); err == nil {
		t.Fatal("both frontend groups down must be dead")
	}
	if _, err := MapOut([]string{"bogus"}); err == nil {
		t.Fatal("unknown super must error")
	}
	// duplicates collapse
	d, err = MapOut([]string{"BE0", "BE0"})
	if err != nil || d.IntGroupsDisabled != 1 {
		t.Fatalf("dup mapout = %+v, %v", d, err)
	}
}

func TestScaleFor(t *testing.T) {
	s90 := ScaleFor(area.Node(90))
	if s90.ExtraMispred != 0 || s90.MemLatencyScale != 1 {
		t.Fatalf("90nm scale = %+v", s90)
	}
	s45 := ScaleFor(area.Node(45))
	if s45.ExtraMispred != 4 {
		t.Fatalf("45nm extra mispred = %d, want 4 (2 halvings)", s45.ExtraMispred)
	}
	if s45.MemLatencyScale < 2.24 || s45.MemLatencyScale > 2.26 {
		t.Fatalf("45nm mem scale = %v, want 2.25", s45.MemLatencyScale)
	}
}

func TestIPCStudySubset(t *testing.T) {
	rows, err := IPCStudy([]string{"gzip", "swim"}, 2000, 15000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.Rescue <= 0 {
			t.Fatalf("row %+v", r)
		}
		if r.DegradationPct < -2 || r.DegradationPct > 25 {
			t.Fatalf("degradation out of band: %+v", r)
		}
	}
}

func TestPerfModelAndYATStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("yat study is slow")
	}
	benches := []string{"gzip", "swim"}
	models := map[int]*PerfModel{}
	for _, node := range area.Nodes() {
		pm, err := BuildPerfModel(node, benches, 1000, 6000)
		if err != nil {
			t.Fatal(err)
		}
		// full-config Rescue IPC must be within [0.5, 1.02] of baseline
		for _, b := range benches {
			full := pm.Rescue[b][yield.CoreConfig{}]
			if full <= 0 || full > pm.Baseline[b]*1.05 {
				t.Fatalf("node %d bench %s: full rescue %v vs baseline %v",
					node.NodeNM, b, full, pm.Baseline[b])
			}
		}
		models[node.NodeNM] = pm
	}
	rows, err := YATStudy(area.Node(90), models)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 nodes x 4 growth rates
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !(r.RelNone <= r.RelCS+1e-9 && r.RelCS <= 1+1e-9 && r.RelRescue <= 1+1e-9) {
			t.Fatalf("ordering broken: %+v", r)
		}
	}
	// Rescue advantage at 18nm must exceed that at 32nm (the paper's trend)
	var a32, a18 float64
	for _, r := range rows {
		if r.Growth == 0.3 && r.NodeNM == 32 {
			a32 = r.RescueOverCSPct
		}
		if r.Growth == 0.3 && r.NodeNM == 18 {
			a18 = r.RescueOverCSPct
		}
	}
	if a18 <= a32 {
		t.Fatalf("advantage should grow with scaling: 32nm %.1f%%, 18nm %.1f%%", a32, a18)
	}
}
