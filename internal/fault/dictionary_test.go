package fault

import (
	"strings"
	"testing"

	"rescue/internal/netlist"
	"rescue/internal/scan"
)

func dictFixture(t *testing.T) (*Sim, *Universe) {
	t.Helper()
	n := buildPipe()
	c, err := scan.Insert(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomPatterns(c, 6, 3)
	return NewSim(c, pats), NewUniverse(n)
}

func TestBuildDictionary(t *testing.T) {
	sim, u := dictFixture(t)
	d := BuildDictionary(sim, u)
	if len(d.Syndromes) != u.CountCollapsed() {
		t.Fatalf("syndromes = %d, want %d", len(d.Syndromes), u.CountCollapsed())
	}
	if d.Detected() < u.CountCollapsed()*9/10 {
		t.Fatalf("only %d/%d detected", d.Detected(), u.CountCollapsed())
	}
	// every syndrome must agree with direct simulation
	for i, f := range u.Collapsed {
		res := sim.Run(f, 0)
		if len(res.FailObs) != len(d.Syndromes[i]) {
			t.Fatalf("fault %d: dictionary %v vs sim %v", i, d.Syndromes[i], res.FailObs)
		}
	}
}

func TestDictionaryLookup(t *testing.T) {
	sim, u := dictFixture(t)
	d := BuildDictionary(sim, u)
	// the true fault must always be among the diagnosis candidates
	for i := range u.Collapsed {
		if len(d.Syndromes[i]) == 0 {
			continue
		}
		cands := d.Lookup(d.Syndromes[i])
		found := false
		for _, c := range cands {
			if c == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("fault %d not among its own candidates %v", i, cands)
		}
	}
	// looking up an impossible syndrome yields no candidates
	if cands := d.Lookup([]int{0, 1, 2, 3}); len(cands) != 0 {
		t.Fatalf("impossible syndrome matched %v", cands)
	}
}

func TestDictionaryCSVRoundTrip(t *testing.T) {
	sim, u := dictFixture(t)
	d := BuildDictionary(sim, u)
	var sb strings.Builder
	if err := d.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Syndromes) != len(d.Syndromes) {
		t.Fatalf("round trip lost rows: %d vs %d", len(got.Syndromes), len(d.Syndromes))
	}
	for i := range d.Syndromes {
		if len(got.Syndromes[i]) != len(d.Syndromes[i]) {
			t.Fatalf("row %d differs", i)
		}
		for j := range d.Syndromes[i] {
			if got.Syndromes[i][j] != d.Syndromes[i][j] {
				t.Fatalf("row %d bit %d differs", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("garbage")); err == nil {
		t.Fatal("no comma must error")
	}
	if _, err := ReadCSV(strings.NewReader("x,1")); err == nil {
		t.Fatal("non-numeric index must error")
	}
	if _, err := ReadCSV(strings.NewReader("5,1;2")); err == nil {
		t.Fatal("out-of-order index must error")
	}
	if _, err := ReadCSV(strings.NewReader("0,a;b")); err == nil {
		t.Fatal("non-numeric syndrome must error")
	}
	d, err := ReadCSV(strings.NewReader("0,\n1,3;4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Syndromes) != 2 || len(d.Syndromes[0]) != 0 || len(d.Syndromes[1]) != 2 {
		t.Fatalf("parsed %+v", d.Syndromes)
	}
	_ = netlist.NoFault
}
