package selfheal

import (
	"testing"
	"testing/quick"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Fatal("zero entries must error")
	}
	if _, err := New(4, -1); err == nil {
		t.Fatal("negative spares must error")
	}
}

func TestMarkAndAvoid(t *testing.T) {
	a, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Usable(3) {
		t.Fatal("pristine entry must be usable")
	}
	if err := a.MarkFaulty(3); err != nil {
		t.Fatal(err)
	}
	if a.Usable(3) {
		t.Fatal("faulty entry without spares must be avoided")
	}
	if a.EffectiveCapacity() != 7 {
		t.Fatalf("capacity = %d", a.EffectiveCapacity())
	}
	if a.Avoided == 0 {
		t.Fatal("avoidance not counted")
	}
	if err := a.MarkFaulty(99); err == nil {
		t.Fatal("out of range must error")
	}
	// double mark is idempotent
	if err := a.MarkFaulty(3); err != nil {
		t.Fatal(err)
	}
	if a.FaultyCount() != 1 {
		t.Fatalf("faulty = %d", a.FaultyCount())
	}
}

func TestSparesRestoreCapacity(t *testing.T) {
	a, _ := New(8, 2)
	a.MarkFaulty(1)
	a.MarkFaulty(5)
	if !a.Usable(1) || !a.Usable(5) {
		t.Fatal("remapped entries must be usable")
	}
	if a.EffectiveCapacity() != 8 {
		t.Fatalf("capacity = %d with spares", a.EffectiveCapacity())
	}
	// third fault exceeds the spares
	a.MarkFaulty(6)
	if a.Usable(6) {
		t.Fatal("third fault must be avoided")
	}
	if a.EffectiveCapacity() != 7 {
		t.Fatalf("capacity = %d", a.EffectiveCapacity())
	}
	if a.Remapped == 0 {
		t.Fatal("remap not counted")
	}
}

func TestInjectRandomDeterministic(t *testing.T) {
	a, _ := New(256, 0)
	b, _ := New(256, 0)
	a.InjectRandom(0.25, 7)
	b.InjectRandom(0.25, 7)
	if a.FaultyCount() != b.FaultyCount() {
		t.Fatal("injection not deterministic")
	}
	if a.FaultyCount() < 30 || a.FaultyCount() > 100 {
		t.Fatalf("injection count %d implausible for 25%% of 256", a.FaultyCount())
	}
	if a.Alive() != true {
		t.Fatal("array should still be alive")
	}
}

// Property: capacity + avoided-entry count == size, for any fault pattern.
func TestCapacityAccountingProperty(t *testing.T) {
	f := func(marks []uint8, spares8 uint8) bool {
		spares := int(spares8 % 4)
		a, err := New(16, spares)
		if err != nil {
			return false
		}
		for _, m := range marks {
			_ = a.MarkFaulty(int(m % 16))
		}
		unusable := 0
		for i := 0; i < 16; i++ {
			if !a.Usable(i) {
				unusable++
			}
		}
		return a.EffectiveCapacity()+unusable == 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
