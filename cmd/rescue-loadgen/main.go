// Command rescue-loadgen fires a seeded, ServeGen-style synthetic
// workload at a live rescued daemon and grades the result against
// latency/error SLOs.
//
// The generator compiles a deterministic request schedule from a client
// population — Zipf-skewed per-client rates, per-client job-kind mixes
// over the serving kinds, Poisson arrivals with optional bursts, and a
// configurable cache-hit ratio (warm requests reuse canonical flow seeds,
// cold ones perturb them) — then replays it open-loop over real HTTP:
// submit, back off on 429 by the server's Retry-After, stream the job's
// event feed to completion. Same -seed = same schedule, byte for byte,
// so runs are comparable across commits.
//
// The run's per-kind latency percentiles, throughput, cache-hit
// economics, queue-depth/slot-occupancy samples, and error counts land in
// a machine-readable report (-out, default BENCH_loadtest.json) plus a
// human summary on stdout. Declared SLOs are enforced: a warm-path p99
// above -slo-p99-warm or an error rate above -slo-error-rate exits 1 —
// the CI regression gate.
//
// Multi-tenant runs: -tenant/-class tag every request (headers, not
// bodies — artifact identities are untouched); -slow-readers N turns the
// first N requests into late-replaying consumers that count the server's
// bounded-buffer drop markers; -scenario noisy-neighbor replaces the
// plain run with the canned fairness experiment — a warm victim tenant
// measured solo, then under an aggressor flood against the fair daemon
// at -base, and optionally against a -fair=false daemon at -base-unfair,
// which must demonstrably violate the fairness budget. A fairness
// violation exits 1 like an SLO violation.
//
// Usage:
//
//	rescue-loadgen -base http://127.0.0.1:8321 [-seed N] [-clients N]
//	    [-duration D] [-rps R] [-skew S] [-hit-ratio H]
//	    [-burst-frac F] [-burst-len L] [-mix kind=w,kind=w,...]
//	    [-tenant name] [-class interactive|batch] [-slow-readers N]
//	    [-prewarm] [-out file] [-slo-p99-warm D] [-slo-error-rate R]
//	    [-max-retries N] [-retry-cap D] [-timeout D] [-dry-run]
//	rescue-loadgen -scenario noisy-neighbor -base URL [-base-unfair URL]
//	    [-victim-rps R] [-aggressor-mult M] [-fairness-bound B]
//	    [-fairness-floor D] [-duration D] [-seed N] [-out file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rescue/internal/cli"
	"rescue/internal/loadgen"
)

func main() {
	base := flag.String("base", "", "rescued base URL, e.g. http://127.0.0.1:8321 (required unless -dry-run)")
	seed := flag.Int64("seed", 1, "workload seed; same seed = identical request schedule")
	clients := flag.Int("clients", 8, "client population size")
	duration := flag.Duration("duration", 10*time.Second, "schedule horizon")
	rps := flag.Float64("rps", 10, "aggregate arrival rate, requests/second")
	skew := flag.Float64("skew", 1.0, "Zipf exponent over client rates (0 = uniform)")
	hitRatio := flag.Float64("hit-ratio", 0.9, "probability a request reuses its kind's canonical seed")
	burstFrac := flag.Float64("burst-frac", 0.25, "fraction of clients with bursty arrivals")
	burstLen := flag.Float64("burst-len", 3, "mean extra requests per burst epoch")
	mix := flag.String("mix", "", "kind weights, e.g. table3=3,isolation=3,fab=2 (default: the built-in small mix)")
	prewarm := flag.Bool("prewarm", true, "prime each kind's canonical artifacts before the clock starts")
	out := flag.String("out", "BENCH_loadtest.json", "machine-readable report path (empty = don't write)")
	sloP99Warm := flag.Duration("slo-p99-warm", 0, "fail (exit 1) if the warm-path p99 exceeds this (0 = off)")
	sloErrRate := flag.Float64("slo-error-rate", -1, "fail (exit 1) if the error rate exceeds this fraction (negative = off)")
	maxRetries := flag.Int("max-retries", 8, "429 resubmissions per request before it counts as rejected")
	retryCap := flag.Duration("retry-cap", 5*time.Second, "cap on honored Retry-After waits")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall run deadline")
	dryRun := flag.Bool("dry-run", false, "print the compiled schedule as NDJSON (plus its digest) and exit")
	quiet := flag.Bool("quiet", false, "suppress progress lines")
	tenant := flag.String("tenant", "", "tenant identity for every request (X-Rescue-Client; empty = untagged)")
	class := flag.String("class", "", "priority class for every request: interactive or batch (empty = server default)")
	slowReaders := flag.Int("slow-readers", 0, "first N requests replay their event stream only after the job finishes, counting drop markers")
	slowReadDelay := flag.Duration("slow-read-delay", 0, "slow readers' poll interval (0 = 50ms)")
	scenario := flag.String("scenario", "", "canned scenario instead of a plain run: noisy-neighbor")
	baseUnfair := flag.String("base-unfair", "", "noisy-neighbor: base URL of a -fair=false daemon for the control leg")
	victimRPS := flag.Float64("victim-rps", 0, "noisy-neighbor: victim arrival rate (0 = 2)")
	aggressorMult := flag.Float64("aggressor-mult", 0, "noisy-neighbor: aggressor rate as a multiple of the victim's (0 = 15)")
	fairnessBound := flag.Float64("fairness-bound", 0, "noisy-neighbor: allowed victim warm-p99 degradation multiple over solo (0 = 3)")
	fairnessFloor := flag.Duration("fairness-floor", 0, "noisy-neighbor: absolute lower bound on the fair budget (0 = 250ms)")
	flag.Parse()
	cli.CheckTimeout(*timeout)

	if *class != "" && *class != "interactive" && *class != "batch" {
		cli.Usagef("-class must be interactive or batch, got %q", *class)
	}
	if *slowReaders < 0 {
		cli.Usagef("-slow-readers must be >= 0, got %d", *slowReaders)
	}
	if *scenario != "" && *scenario != "noisy-neighbor" {
		cli.Usagef("unknown -scenario %q (have: noisy-neighbor)", *scenario)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	opts := loadgen.Options{
		BaseURL:       *base,
		Prewarm:       *prewarm,
		MaxRetries:    *maxRetries,
		RetryCap:      *retryCap,
		SlowReaders:   *slowReaders,
		SlowReadDelay: *slowReadDelay,
		Logf:          logf,
	}

	if *scenario == "noisy-neighbor" {
		if *base == "" {
			cli.Usagef("-base is required for -scenario noisy-neighbor")
		}
		ctx, cancel := cli.FlowContext(*timeout)
		defer cancel()
		report, err := loadgen.RunNoisyNeighbor(ctx, loadgen.NoisyNeighborConfig{
			Seed:          *seed,
			Duration:      *duration,
			VictimRPS:     *victimRPS,
			AggressorMult: *aggressorMult,
			Bound:         *fairnessBound,
			FloorMS:       float64(*fairnessFloor) / float64(time.Millisecond),
		}, opts, *baseUnfair)
		if err != nil {
			cli.ExitErr(err)
		}
		writeReport(report, *out)
		report.WriteSummary(os.Stdout)
		if len(report.Fairness.Violations) > 0 {
			for _, v := range report.Fairness.Violations {
				fmt.Fprintf(os.Stderr, "FAIRNESS VIOLATION: %s\n", v)
			}
			os.Exit(cli.ExitRuntime)
		}
		return
	}

	profiles, err := mixProfiles(*mix)
	if err != nil {
		cli.Usagef("%v", err)
	}
	cfg := loadgen.Config{
		Seed:      *seed,
		Clients:   *clients,
		Duration:  *duration,
		RPS:       *rps,
		Skew:      *skew,
		HitRatio:  *hitRatio,
		BurstFrac: *burstFrac,
		BurstLen:  *burstLen,
		Profiles:  profiles,
		Tenant:    *tenant,
		Class:     *class,
	}
	sch, err := loadgen.Build(cfg)
	if err != nil {
		cli.Usagef("%v", err)
	}

	if *dryRun {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range sch.Requests {
			if err := enc.Encode(r); err != nil {
				cli.Fatalf("%v", err)
			}
		}
		fmt.Fprintf(os.Stderr, "schedule: %d requests, %d clients, digest %s\n",
			len(sch.Requests), len(sch.Clients), sch.Digest())
		return
	}
	if *base == "" {
		cli.Usagef("-base is required (or use -dry-run)")
	}

	ctx, cancel := cli.FlowContext(*timeout)
	defer cancel()
	stats, err := loadgen.Run(ctx, sch, opts)
	if err != nil {
		cli.ExitErr(err)
	}

	report := loadgen.BuildReport(cfg, sch, stats)
	violations := report.CheckSLOs(*sloP99Warm, *sloErrRate)
	writeReport(report, *out)
	report.WriteSummary(os.Stdout)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "SLO VIOLATION: %s\n", v)
		}
		os.Exit(cli.ExitRuntime)
	}
}

// writeReport lands the machine-readable report at path ("" = skip).
func writeReport(report *loadgen.Report, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	if err := report.WriteJSON(f); err != nil {
		cli.Fatalf("write %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		cli.Fatalf("close %s: %v", path, err)
	}
}

// mixProfiles applies a "kind=weight,..." override to the built-in small
// mix: listed kinds get the given weight, unlisted ones drop out. An
// empty spec keeps the full default mix.
func mixProfiles(spec string) ([]loadgen.Profile, error) {
	all := loadgen.SmallMix()
	if spec == "" {
		return all, nil
	}
	byKind := map[string]loadgen.Profile{}
	for _, p := range all {
		byKind[p.Kind] = p
	}
	var out []loadgen.Profile
	for _, part := range strings.Split(spec, ",") {
		kind, w, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q, want kind=weight", part)
		}
		p, known := byKind[kind]
		if !known {
			return nil, fmt.Errorf("unknown kind %q in -mix", kind)
		}
		weight, err := strconv.ParseFloat(w, 64)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("bad weight %q for kind %s", w, kind)
		}
		if weight == 0 {
			continue
		}
		p.Weight = weight
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix %q selects no kinds", spec)
	}
	return out, nil
}
