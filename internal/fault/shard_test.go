package fault

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// execVia returns a ShardFunc that computes shards in-process by running a
// fresh worker-side campaign under WithShardTarget — the same machinery an
// HTTP worker uses, minus the wire.
func execVia(sim *Sim, u *Universe, nFaults int, cfg CampaignConfig) ShardFunc {
	return func(ctx context.Context, key CampaignKey, lo, hi int) (*ShardResult, error) {
		wctx, res := WithShardTarget(ctx, key, lo, hi)
		camp := NewCampaign(sim, cfg)
		_, _, err := camp.RunCheckpoint(wctx, nil, u.Collapsed[:nFaults])
		if !errors.Is(err, ErrShardDone) {
			return nil, fmt.Errorf("worker campaign returned %v, want ErrShardDone", err)
		}
		return res, nil
	}
}

// TestShardWindowMatchesFullRun: a worker window's results are bit-identical
// to the same indices of a full local run, the collector is sealed, and the
// flow is stopped with ErrShardDone.
func TestShardWindowMatchesFullRun(t *testing.T) {
	sim, u := rescueSim(t, 2, 61)
	faults := u.Collapsed[:200]
	full := NewCampaign(sim, CampaignConfig{Workers: 2})
	want, _, err := full.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}
	key := campaignIdentity(full.core, faults, 0, len(full.core.Patterns), full.cfg)

	ctx, res := WithShardTarget(context.Background(), key, 50, 130)
	worker := NewCampaign(sim, CampaignConfig{Workers: 3})
	_, st, err := worker.Run(ctx, faults)
	if !errors.Is(err, ErrShardDone) {
		t.Fatalf("window run returned %v, want ErrShardDone", err)
	}
	if st.Faults != 80 {
		t.Fatalf("window simulated %d faults, want 80", st.Faults)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("sealed shard fails Verify: %v", err)
	}
	if !reflect.DeepEqual(res.Results, want[50:130]) {
		t.Fatal("shard window results differ from the full run's same indices")
	}

	// A campaign with a different key must not claim the target.
	other := NewCampaign(sim, CampaignConfig{Workers: 2})
	octx, ores := WithShardTarget(context.Background(), key, 0, 10)
	if _, _, err := other.Run(octx, faults[:150]); err != nil {
		t.Fatalf("non-matching campaign under a shard target failed: %v", err)
	}
	if ores.Digest != "" {
		t.Fatal("non-matching campaign filled the collector")
	}
}

// TestShardPlanDispatch: a coordinator campaign under WithShardPlan farms
// every fault range out remotely and merges a result bit-identical to the
// serial run, simulating nothing locally.
func TestShardPlanDispatch(t *testing.T) {
	sim, u := rescueSim(t, 2, 61)
	faults := u.Collapsed[:200]
	serial := NewCampaign(sim, CampaignConfig{Workers: 1})
	want, _, err := serial.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}

	var dispatched atomic.Int64
	plan := &ShardPlan{
		Exec: func(ctx context.Context, key CampaignKey, lo, hi int) (*ShardResult, error) {
			dispatched.Add(1)
			return execVia(sim, u, 200, CampaignConfig{Workers: 2})(ctx, key, lo, hi)
		},
		Shards: 4,
	}
	coord := NewCampaign(sim, CampaignConfig{Workers: 2})
	got, st, err := coord.Run(WithShardPlan(context.Background(), plan), faults)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("dispatched campaign differs from serial run")
	}
	if n := dispatched.Load(); n != 4 {
		t.Fatalf("dispatched %d shards, want 4", n)
	}
	// Remote stats merged: every fault was simulated exactly once, remotely.
	if st.Faults != 200 {
		t.Fatalf("merged stats count %d fault sims, want 200", st.Faults)
	}
}

// TestShardPlanFallback: shards whose dispatch fails are simulated locally,
// the result stays bit-identical, and the fallback hook sees every failed
// range. With every dispatch failing (pool exhausted), the campaign
// degrades to a plain local run.
func TestShardPlanFallback(t *testing.T) {
	sim, u := rescueSim(t, 2, 61)
	faults := u.Collapsed[:200]
	serial := NewCampaign(sim, CampaignConfig{Workers: 1})
	want, _, err := serial.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("partial", func(t *testing.T) {
		var fellBack atomic.Int64
		var calls atomic.Int64
		plan := &ShardPlan{
			Exec: func(ctx context.Context, key CampaignKey, lo, hi int) (*ShardResult, error) {
				// Fail half the shards; Exec runs concurrently across the
				// dispatch goroutines, so the toggle must be atomic.
				if calls.Add(1)%2 == 0 {
					return nil, errors.New("worker died")
				}
				return execVia(sim, u, 200, CampaignConfig{Workers: 1})(ctx, key, lo, hi)
			},
			Shards:     4,
			OnFallback: func(CampaignKey, int, int, error) { fellBack.Add(1) },
		}
		coord := NewCampaign(sim, CampaignConfig{Workers: 2})
		got, _, err := coord.Run(WithShardPlan(context.Background(), plan), faults)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("partially dispatched campaign differs from serial run")
		}
		if fellBack.Load() == 0 {
			t.Fatal("no fallback despite failing dispatches")
		}
	})

	t.Run("exhausted", func(t *testing.T) {
		var fellBack atomic.Int64
		plan := &ShardPlan{
			Exec: func(ctx context.Context, key CampaignKey, lo, hi int) (*ShardResult, error) {
				return nil, errors.New("no live workers")
			},
			Shards:     3,
			OnFallback: func(CampaignKey, int, int, error) { fellBack.Add(1) },
		}
		coord := NewCampaign(sim, CampaignConfig{Workers: 2})
		got, st, err := coord.Run(WithShardPlan(context.Background(), plan), faults)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("fully degraded campaign differs from serial run")
		}
		if fellBack.Load() != 3 {
			t.Fatalf("fallback hook saw %d shards, want 3", fellBack.Load())
		}
		if st.Faults != 200 {
			t.Fatalf("local fallback simulated %d faults, want 200", st.Faults)
		}
	})
}

// TestShardPlanRejectsCorruptResult: a shard result with tampered bytes, a
// wrong window, or a foreign key is refused and its range recomputed
// locally — the merged output never trusts unverified remote data.
func TestShardPlanRejectsCorruptResult(t *testing.T) {
	sim, u := rescueSim(t, 2, 61)
	faults := u.Collapsed[:120]
	serial := NewCampaign(sim, CampaignConfig{Workers: 1})
	want, _, err := serial.Run(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}

	tamper := []func(r *ShardResult){
		func(r *ShardResult) { r.Results[0].Detected = !r.Results[0].Detected }, // digest mismatch
		func(r *ShardResult) { r.Lo++; r.Results = r.Results[1:] },              // window mismatch
		func(r *ShardResult) { r.Key.FaultsDigest = "0000000000000000" },        // foreign key
	}
	for i, corrupt := range tamper {
		t.Run(fmt.Sprintf("tamper-%d", i), func(t *testing.T) {
			var fellBack atomic.Int64
			plan := &ShardPlan{
				Exec: func(ctx context.Context, key CampaignKey, lo, hi int) (*ShardResult, error) {
					res, err := execVia(sim, u, 120, CampaignConfig{Workers: 1})(ctx, key, lo, hi)
					if err != nil {
						return nil, err
					}
					corrupt(res)
					return res, nil
				},
				Shards:     1,
				OnFallback: func(CampaignKey, int, int, error) { fellBack.Add(1) },
			}
			coord := NewCampaign(sim, CampaignConfig{Workers: 2})
			got, _, err := coord.Run(WithShardPlan(context.Background(), plan), faults)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("campaign merged a corrupt shard")
			}
			if fellBack.Load() != 1 {
				t.Fatalf("corrupt shard not rejected (fallbacks=%d)", fellBack.Load())
			}
		})
	}
}

// TestShardPlanCheckpointJournal: remotely computed shards are journaled
// like local chunks — a reload of the coordinator's journal rehydrates the
// full campaign.
func TestShardPlanCheckpointJournal(t *testing.T) {
	sim, u := rescueSim(t, 2, 61)
	faults := u.Collapsed[:200]
	path := filepath.Join(t.TempDir(), "coord.ck")

	plan := &ShardPlan{Exec: execVia(sim, u, 200, CampaignConfig{Workers: 2}), Shards: 3}
	coord := NewCampaign(sim, CampaignConfig{Workers: 2})
	want, _, err := coord.RunCheckpoint(WithShardPlan(context.Background(), plan), NewCheckpoint(path), faults)
	if err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewCampaign(sim, CampaignConfig{Workers: 2})
	got, st, err := resumed.RunCheckpoint(context.Background(), ck, faults)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rehydrated != 200 {
		t.Fatalf("rehydrated %d of 200 from a dispatched run's journal", st.Rehydrated)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("rehydrated results differ from the dispatched run")
	}
}

// TestShardEligibility: windowed (per-word ATPG-style) campaigns and
// campaigns below MinFaults never dispatch — they run locally even under an
// armed plan.
func TestShardEligibility(t *testing.T) {
	sim, u := rescueSim(t, 2, 61)
	faults := u.Collapsed[:80]
	var dispatched atomic.Int64
	plan := &ShardPlan{
		Exec: func(ctx context.Context, key CampaignKey, lo, hi int) (*ShardResult, error) {
			dispatched.Add(1)
			return nil, errors.New("must not be called")
		},
		Shards:    2,
		MinFaults: 100,
	}
	ctx := WithShardPlan(context.Background(), plan)

	// Below MinFaults: local.
	camp := NewCampaign(sim, CampaignConfig{Workers: 2})
	if _, _, err := camp.Run(ctx, faults); err != nil {
		t.Fatal(err)
	}
	// Windowed run (not the full pattern span): local regardless of size.
	plan.MinFaults = 1
	wcamp := NewCampaign(sim, CampaignConfig{Workers: 2})
	if _, _, err := wcamp.RunWords(ctx, faults, 1, 2); err != nil {
		t.Fatal(err)
	}
	if n := dispatched.Load(); n != 0 {
		t.Fatalf("ineligible campaigns dispatched %d shards", n)
	}
}
