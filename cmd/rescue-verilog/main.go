// Command rescue-verilog dumps the generated gate-level designs as
// structural Verilog (and optionally the component-level connectivity as
// Graphviz), so the models this repository generates can be fed to
// external simulation, synthesis, or commercial ATPG tools — the flow the
// paper ran through Synopsys Design Compiler and TetraMax.
//
// Usage:
//
//	rescue-verilog [-variant baseline|rescue] [-small] [-o file.v] [-dot file.dot]
package main

import (
	"flag"
	"fmt"
	"os"

	"rescue/internal/rtl"
)

func main() {
	variant := flag.String("variant", "rescue", "baseline or rescue")
	small := flag.Bool("small", false, "use the reduced (2-way) configuration")
	out := flag.String("o", "", "Verilog output file (default stdout)")
	dot := flag.String("dot", "", "also write component connectivity as Graphviz")
	flag.Parse()

	v := rtl.RescueDesign
	switch *variant {
	case "rescue":
	case "baseline":
		v = rtl.Baseline
	default:
		fmt.Fprintln(os.Stderr, "variant must be baseline or rescue")
		os.Exit(2)
	}
	cfg := rtl.Default()
	if *small {
		cfg = rtl.Small()
	}
	d, err := rtl.Build(cfg, v)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := d.N.WriteVerilog(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := d.N.WriteDot(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d gates, %d FFs, %d components\n",
		d.N.Name, d.N.NumGates(), d.N.NumFFs(), d.N.NumComps())
}
