// Command rescue-dict builds a complete fault dictionary for the Rescue
// design — every collapsed fault's syndrome (set of failing scan bits)
// under the generated test program — and optionally diagnoses an observed
// syndrome against it: the candidate faults and the super-component they
// implicate. This is the test-floor artifact real diagnosis flows use in
// place of per-part re-simulation.
//
// Usage:
//
//	rescue-dict build [-small] [-workers N] -o dict.csv
//	rescue-dict diagnose [-small] -d dict.csv -bits 12,57,103
//
// Dictionary construction fan-outs across -workers cores (0 = all); the
// dictionary is bit-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/rtl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "diagnose":
		diagnose(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rescue-dict build|diagnose [flags]")
	os.Exit(2)
}

func system(small bool, workers int) (*core.System, *core.TestProgram) {
	cfg := rtl.Default()
	if small {
		cfg = rtl.Small()
	}
	sys, err := core.Build(cfg, rtl.RescueDesign)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := atpg.DefaultGenConfig()
	gen.Workers = workers
	return sys, sys.GenerateTests(gen)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	small := fs.Bool("small", false, "use the reduced (2-way) configuration")
	workers := fs.Int("workers", 0, "fault-simulation workers (0 = all cores)")
	out := fs.String("o", "", "output CSV (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "build: -o required")
		os.Exit(2)
	}
	sys, tp := system(*small, *workers)
	fmt.Printf("building dictionary over %d collapsed faults, %d vectors...\n",
		tp.Universe.CountCollapsed(), tp.Gen.Vectors)
	d, st := fault.BuildDictionaryWorkers(tp.Gen.Sim, tp.Universe, *workers)
	fmt.Printf("campaign: %d fault-sims, %d word-sims, %d gate events, %d workers, %s\n",
		st.Faults, st.Words, st.Events, st.Workers, st.Wall.Round(time.Millisecond))
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%d/%d faults detected; dictionary written to %s\n",
		d.Detected(), tp.Universe.CountCollapsed(), *out)
	_ = sys
}

func diagnose(args []string) {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	small := fs.Bool("small", false, "use the reduced (2-way) configuration")
	dict := fs.String("d", "", "dictionary CSV from `rescue-dict build` (required)")
	bits := fs.String("bits", "", "comma-separated failing observation indices (required)")
	fs.Parse(args)
	if *dict == "" || *bits == "" {
		fmt.Fprintln(os.Stderr, "diagnose: -d and -bits required")
		os.Exit(2)
	}
	f, err := os.Open(*dict)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	d, err := fault.ReadCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var obs []int
	for _, p := range strings.Split(*bits, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		obs = append(obs, v)
	}
	sys, tp := system(*small, 0)
	if len(d.Syndromes) != tp.Universe.CountCollapsed() {
		fmt.Fprintf(os.Stderr, "dictionary has %d rows but the design has %d faults (wrong -small?)\n",
			len(d.Syndromes), tp.Universe.CountCollapsed())
		os.Exit(1)
	}
	cands := d.Lookup(obs)
	fmt.Printf("%d candidate faults for syndrome %v\n", len(cands), obs)
	supers := map[string]int{}
	n := sys.Design.N
	for _, c := range cands {
		fsite := tp.Universe.Collapsed[c]
		comp := n.CompName(n.FaultSiteComp(fsite))
		supers[sys.Design.Grouping[comp]]++
	}
	for s, k := range supers {
		fmt.Printf("  super-component %-10s %d candidates\n", s, k)
	}
	if super, err := sys.Audit.Isolate(obs); err == nil {
		fmt.Printf("single-lookup isolation: %s\n", super)
	} else {
		fmt.Printf("single-lookup isolation: %v\n", err)
	}
}
