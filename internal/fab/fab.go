// Package fab closes the paper's defect-tolerance loop empirically: a
// Monte Carlo die lifecycle that manufactures a fleet of Rescue dies with
// clustered random defects, tests and diagnoses each one with the real
// scan-test machinery, programs the fault-map register, and ships
// survivors in degraded configurations — then compares the measured fleet
// yield and yield-adjusted throughput against the analytic EQ 2/3 model
// (yield.ChipAlpha) that Figure 9 is built from.
//
// Per die the lifecycle is:
//
//  1. sample a clustered defect count — a negative-binomial draw realized
//     as Gamma(alpha, mean 1) mixing of a Poisson, the same model EQ 3
//     integrates analytically — and place each defect in a component
//     chosen by silicon area, then as a concrete stuck-at fault in the
//     Rescue netlist;
//  2. run the chain flush test (scan-cell defects fail it; scan is
//     chipkill by construction), then the generated ATPG pattern set via
//     the shared fault-simulation campaign, and diagnose the union of
//     failing bits with the single-lookup ICI isolation table — with test
//     escapes, undetectable faults, ambiguous diagnoses, and chipkill
//     hits all emerging from the real machinery rather than being
//     modelled;
//  3. map the diagnosis to a degraded configuration (core.MapOut),
//     discarding chipkill/ambiguous/dead dies, exhausting selfheal.Array
//     spares for defects in self-healed structures when enabled;
//  4. score shipped dies with the degraded-IPC model and aggregate fleet
//     yield and YAT with confidence intervals.
//
// Determinism: die sampling is a pure function of (seed, die index), the
// deduplicated fault list is simulated as ONE campaign (bit-identical at
// any worker count, checkpoint/resume-able at chunk granularity), and the
// lifecycle walk is serial — so a killed 100k-die run resumes
// bit-identically at any -workers.
package fab

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"rescue/internal/area"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/netlist"
	"rescue/internal/obs"
	"rescue/internal/selfheal"
	"rescue/internal/yield"
)

// Config parameterizes a fleet run.
type Config struct {
	Dies     int
	Node     area.Scaling
	Stagnate area.Scaling
	Growth   float64 // core growth rate per halving (e.g. 0.30)
	Seed     int64
	Workers  int // fault-simulation workers (0 = all cores)

	// SelfHealShare > 0 moves that fraction of the chipkill bucket into
	// self-healing arrays (the caller must pass the matching
	// area.RescueSelfHeal model): defects there consume spare entries
	// instead of killing the core, until exhaustion.
	SelfHealShare float64
	HealEntries   int // entries per core's healed array (default 1024)
	HealSpares    int // spare entries (default 16)
}

func (c Config) withDefaults() Config {
	if c.HealEntries == 0 {
		c.HealEntries = 1024
		c.HealSpares = 16
	}
	return c
}

// Engine is a configured die-lifecycle Monte Carlo.
type Engine struct {
	cfg Config
	sys *core.System
	tp  *core.TestProgram

	refBase, refResc yield.CoreModel // reference (90nm) models, as passed
	base, resc       yield.CoreModel // node-scaled
	density          float64         // faults/mm² at the node
	cores            int             // per die
	scanFrac         float64         // scan-cell fraction of the chipkill bucket
	healedArea       float64         // node-scaled self-healed silicon (not in resc.Area.Total)

	pools  map[string][]netlist.Fault // member super -> candidate gate faults
	ckPool []netlist.Fault            // chipkill logic gate faults
}

// pairGroups are the redundant groups in sampling order.
var pairGroups = [...]area.Group{area.Frontend, area.IntIQ, area.FPIQ, area.LSQ, area.IntBE, area.FPBE}

// superName returns the netlist super-component of a pair member, or ""
// for groups the netlist does not model structurally (the FP cluster):
// defects there are attributed directly, a documented modelling shortcut
// with perfect diagnosis.
func superName(g area.Group, member int) string {
	switch g {
	case area.Frontend:
		return fmt.Sprintf("FE%d", member)
	case area.IntIQ:
		return fmt.Sprintf("IQ%d", member)
	case area.LSQ:
		return fmt.Sprintf("LSQ%d", member)
	case area.IntBE:
		return fmt.Sprintf("BE%d", member)
	}
	return ""
}

// memberOf inverts superName for the diagnosis walk.
func memberOf(super string) (area.Group, int, bool) {
	if len(super) < 3 {
		return 0, 0, false
	}
	m := int(super[len(super)-1] - '0')
	if m != 0 && m != 1 {
		return 0, 0, false
	}
	switch super[:len(super)-1] {
	case "FE":
		return area.Frontend, m, true
	case "IQ":
		return area.IntIQ, m, true
	case "LSQ":
		return area.LSQ, m, true
	case "BE":
		return area.IntBE, m, true
	}
	return 0, 0, false
}

// New builds an engine over an already-built Rescue system and test
// program. base and resc are the reference-node (90nm) area+IPC models —
// resc.IPC must cover yield.Configs(); the engine scales both to cfg.Node
// with the same yield.ScaleToNode the analytic model uses.
func New(sys *core.System, tp *core.TestProgram, base, resc yield.CoreModel, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Dies < 1 {
		return nil, fmt.Errorf("fab: need at least one die, got %d", cfg.Dies)
	}
	if cfg.Growth < 0 {
		return nil, fmt.Errorf("fab: negative growth rate %v", cfg.Growth)
	}
	if cfg.SelfHealShare < 0 || cfg.SelfHealShare >= 1 {
		return nil, fmt.Errorf("fab: self-heal share must be in [0,1), got %v", cfg.SelfHealShare)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("fab: negative workers %d", cfg.Workers)
	}
	e := &Engine{
		cfg:     cfg,
		sys:     sys,
		tp:      tp,
		refBase: base,
		refResc: resc,
		base:    yield.ScaleToNode(base, cfg.Node, cfg.Growth),
		resc:    yield.ScaleToNode(resc, cfg.Node, cfg.Growth),
		density: yield.Density(cfg.Node, cfg.Stagnate),
		cores:   cfg.Node.Cores(cfg.Growth),
	}
	// The scan-cell area inside the chipkill bucket is a constant of the
	// Rescue transformation; with self-healing the bucket shrinks, so the
	// scan fraction of what remains grows (scan cells are never healed).
	scanArea := area.Rescue().PairArea[area.Chipkill] * area.RescueScanFrac()
	if ck := resc.Area.PairArea[area.Chipkill]; ck > 0 {
		e.scanFrac = math.Min(scanArea/ck, 1)
	}
	if cfg.SelfHealShare > 0 {
		nodeScale := cfg.Node.CoreArea(1, cfg.Growth) // per-mm² factor
		e.healedArea = area.Rescue().PairArea[area.Chipkill] * cfg.SelfHealShare * nodeScale
	}

	// Candidate fault pools per member super-component, from the collapsed
	// universe (equivalent faults behave identically under every pattern).
	e.pools = map[string][]netlist.Fault{}
	n := sys.Design.N
	for _, f := range tp.Universe.Collapsed {
		if f.Gate < 0 {
			continue // scan-cell faults are sampled via the chain-fail path
		}
		super := sys.Design.Grouping[n.CompName(n.FaultSiteComp(f))]
		if super == "CHIPKILL" || super == "" {
			e.ckPool = append(e.ckPool, f)
			continue
		}
		e.pools[super] = append(e.pools[super], f)
	}
	// Scan-cell defect sites: every FF fault (chain flush catches any).
	for _, f := range tp.Universe.Collapsed {
		if f.Gate < 0 {
			e.pools["SCAN"] = append(e.pools["SCAN"], f)
		}
	}
	if len(e.ckPool) == 0 || len(e.pools["SCAN"]) == 0 {
		return nil, fmt.Errorf("fab: netlist has no chipkill logic or scan cells to sample")
	}
	return e, nil
}

// defKind classifies a sampled defect.
type defKind uint8

const (
	defStruct  defKind = iota // gate fault in a pooled member super
	defDirect                 // member without netlist structure (FP cluster)
	defScan                   // scan cell: fails the chain flush test
	defCKLogic                // chipkill logic: isolated to CHIPKILL
	defHealed                 // self-healing array entry
)

// defect is one placed manufacturing defect.
type defect struct {
	kind   defKind
	group  area.Group
	member int
	fault  netlist.Fault // defStruct, defCKLogic, defScan
	entry  int           // defHealed
}

// sampleDie draws one die's defects: a single Gamma(alpha, mean 1)
// mixture value shared by all cores on the die (matching ChipAlpha's
// chip-level clustering), then an independent Poisson count per core with
// area-weighted placement — together distributionally identical to the
// analytic per-group negative-binomial model.
func (e *Engine) sampleDie(die int) [][]defect {
	r := dieRNG(e.cfg.Seed, die)
	x := r.gamma(yield.Alpha)
	perCore := make([][]defect, e.cores)
	lam := e.density * x * (e.resc.Area.Total + e.healedArea)
	for c := 0; c < e.cores; c++ {
		k := r.poisson(lam)
		for j := 0; j < k; j++ {
			perCore[c] = append(perCore[c], e.place(r))
		}
	}
	return perCore
}

// place locates one defect: healed silicon, else an area-weighted group
// pick; chipkill splits into scan cells vs logic; pair groups pick a
// member and a concrete fault site from that member's pool.
func (e *Engine) place(r *rng) defect {
	u := r.float64() * (e.resc.Area.Total + e.healedArea)
	if u >= e.resc.Area.Total {
		return defect{kind: defHealed, group: area.Chipkill, entry: r.intn(e.cfg.HealEntries)}
	}
	g := area.Chipkill
	for _, pg := range pairGroups {
		if u < e.resc.Area.PairArea[pg] {
			g = pg
			break
		}
		u -= e.resc.Area.PairArea[pg]
	}
	if g == area.Chipkill {
		if r.float64() < e.scanFrac {
			pool := e.pools["SCAN"]
			return defect{kind: defScan, group: g, fault: pool[r.intn(len(pool))]}
		}
		return defect{kind: defCKLogic, group: g, fault: e.ckPool[r.intn(len(e.ckPool))]}
	}
	member := r.intn(2)
	pool := e.pools[superName(g, member)]
	if len(pool) == 0 {
		// no netlist structure for this member (FP cluster, or the absent
		// second member of the reduced configuration): direct attribution
		return defect{kind: defDirect, group: g, member: member}
	}
	return defect{kind: defStruct, group: g, member: member, fault: pool[r.intn(len(pool))]}
}

// CoreCounts bins every manufactured core by its lifecycle outcome.
type CoreCounts struct {
	Clean     int // no defects: ships at full IPC
	Degraded  int // ≥1 member mapped out: ships degraded
	ChainFail int // scan-cell defect: chain flush fails, discarded
	ArrayDead int // self-healed array out of capacity, discarded
	Chipkill  int // diagnosis hit chipkill logic, discarded
	Ambiguous int // undiagnosable failing bits: conservative discard
	Dead      int // both members of some pair down, discarded
	FieldFail int // test escape shipped, fails in the field (IPC 0)
}

// Shipped returns cores that left the fab.
func (c CoreCounts) Shipped() int { return c.Clean + c.Degraded + c.FieldFail }

// Functional returns shipped cores that actually work.
func (c CoreCounts) Functional() int { return c.Clean + c.Degraded }

// DefectCounts bins sampled defects by placement.
type DefectCounts struct {
	Struct, Direct, Scan, CKLogic, Healed int
}

func (d DefectCounts) total() int { return d.Struct + d.Direct + d.Scan + d.CKLogic + d.Healed }

// FleetReport aggregates a fleet run, empirical beside analytic.
type FleetReport struct {
	Dies, Cores          int // cores = per die
	NodeNM, StagnateNM   int
	Growth               float64
	Seed                 int64
	Alpha                float64
	Density              float64 // faults/mm² at the node
	CoreArea             float64 // node-scaled rescue core area, mm²
	SelfHealShare        float64
	Defects              DefectCounts
	UniqueFaults         int // deduplicated faults simulated in the campaign
	Counts               CoreCounts
	EmpYield, EmpYieldCI float64 // functional cores / cores, ±95% (per-die)
	AnaYield             float64 // gamma-mixed analytic core yield
	EmpYAT, EmpYATCI     float64 // per-die IPC sum, ±95%
	AnaChip              yield.ChipResult
	Stats                fault.Stats
}

// Run manufactures the fleet: sample every die, simulate the deduplicated
// fault list as one checkpointable campaign, then walk the lifecycle
// serially. On interruption the partial report (carrying the campaign
// stats so far) is returned alongside the error; rerunning with the same
// configuration and the journal resumes bit-identically.
func (e *Engine) Run(ctx context.Context, ck *fault.Checkpoint) (*FleetReport, error) {
	defer obs.Span(ctx, "fab_lifecycle")()
	rep := &FleetReport{
		Dies: e.cfg.Dies, Cores: e.cores,
		NodeNM: e.cfg.Node.NodeNM, StagnateNM: e.cfg.Stagnate.NodeNM,
		Growth: e.cfg.Growth, Seed: e.cfg.Seed, Alpha: yield.Alpha,
		Density: e.density, CoreArea: e.resc.Area.Total,
		SelfHealShare: e.cfg.SelfHealShare,
	}

	// 1. Sample the whole fleet (pure function of seed and die index).
	dies := make([][][]defect, e.cfg.Dies)
	seen := map[netlist.Fault]bool{}
	var unique []netlist.Fault
	for i := range dies {
		dies[i] = e.sampleDie(i)
		for _, coreDefs := range dies[i] {
			for _, d := range coreDefs {
				switch d.kind {
				case defStruct:
					rep.Defects.Struct++
				case defDirect:
					rep.Defects.Direct++
				case defScan:
					rep.Defects.Scan++
				case defCKLogic:
					rep.Defects.CKLogic++
				case defHealed:
					rep.Defects.Healed++
				}
				// scan-cell faults need no simulation: the chain flush
				// test catches them before any pattern is applied
				if (d.kind == defStruct || d.kind == defCKLogic) && !seen[d.fault] {
					seen[d.fault] = true
					unique = append(unique, d.fault)
				}
			}
		}
	}
	sortFaults(unique)
	rep.UniqueFaults = len(unique)

	// 2. One campaign over the deduplicated fault list — the shared
	// resilient machinery: worker pool, chunk-granular cancellation,
	// checkpoint journal, panic isolation.
	resOf := make(map[netlist.Fault]fault.Result, len(unique))
	if len(unique) > 0 {
		camp := fault.NewCampaign(e.tp.Gen.Sim, fault.CampaignConfig{Workers: e.cfg.Workers})
		results, st, err := camp.RunCheckpoint(ctx, ck, unique)
		rep.Stats = st
		if err != nil {
			return rep, err
		}
		for i, f := range unique {
			resOf[f] = results[i]
		}
	}

	// 3. Serial lifecycle walk; per-die aggregates feed the CIs.
	dieYAT := make([]float64, e.cfg.Dies)
	dieFunc := make([]float64, e.cfg.Dies)
	for i, perCore := range dies {
		for _, defs := range perCore {
			fate, ipc, err := e.coreLifecycle(defs, resOf)
			if err != nil {
				return rep, err
			}
			switch fate {
			case fateClean:
				rep.Counts.Clean++
			case fateDegraded:
				rep.Counts.Degraded++
			case fateChainFail:
				rep.Counts.ChainFail++
			case fateArrayDead:
				rep.Counts.ArrayDead++
			case fateChipkill:
				rep.Counts.Chipkill++
			case fateAmbiguous:
				rep.Counts.Ambiguous++
			case fateDead:
				rep.Counts.Dead++
			case fateFieldFail:
				rep.Counts.FieldFail++
			}
			if fate == fateClean || fate == fateDegraded {
				dieYAT[i] += ipc
				dieFunc[i]++
			}
		}
		dieFunc[i] /= float64(e.cores)
	}

	// 4. Fleet statistics and the analytic side of the comparison.
	rep.EmpYield, rep.EmpYieldCI = meanCI(dieFunc)
	rep.EmpYAT, rep.EmpYATCI = meanCI(dieYAT)
	rep.AnaYield = yield.MixGammaAlpha(yield.Alpha, func(x float64) float64 {
		return e.resc.Yield(e.density * x)
	})
	rep.AnaChip = yield.ChipAlpha(e.cfg.Node, e.cfg.Stagnate, e.cfg.Growth, e.refBase, e.refResc, yield.Alpha)
	return rep, nil
}

// fate is one core's lifecycle outcome.
type fate uint8

const (
	fateClean fate = iota
	fateDegraded
	fateChainFail
	fateArrayDead
	fateChipkill
	fateAmbiguous
	fateDead
	fateFieldFail
)

// coreLifecycle runs one core through test, diagnosis, map-out, and
// scoring. It mirrors the manufacturing order: chain flush first, then
// the self-heal BIST, then the ATPG pattern set.
func (e *Engine) coreLifecycle(defs []defect, resOf map[netlist.Fault]fault.Result) (fate, float64, error) {
	if len(defs) == 0 {
		return fateClean, e.ipcOf(yield.CoreConfig{}), nil
	}

	// Chain flush: a scan-cell defect means the chain does not shift —
	// no diagnosis is possible and scan is chipkill by construction.
	for _, d := range defs {
		if d.kind == defScan {
			return fateChainFail, 0, nil
		}
	}

	// Self-heal BIST: defects in healed structures consume capacity.
	var arr *selfheal.Array
	for _, d := range defs {
		if d.kind != defHealed {
			continue
		}
		if arr == nil {
			var err error
			arr, err = selfheal.New(e.cfg.HealEntries, e.cfg.HealSpares)
			if err != nil {
				return 0, 0, err
			}
		}
		if err := arr.MarkFaulty(d.entry); err != nil {
			return 0, 0, err
		}
	}
	if arr != nil && !arr.Alive() {
		return fateArrayDead, 0, nil
	}

	// Scan test: union of failing bits across the pattern set, then the
	// single-lookup diagnosis with conservative chipkill fallback.
	var obs []int
	for _, d := range defs {
		if d.kind != defStruct && d.kind != defCKLogic {
			continue
		}
		if res := resOf[d.fault]; res.Detected {
			obs = append(obs, res.FailObs...)
		}
	}
	supers, ambiguous := Diagnose(e.sys.Audit, obs)
	if ambiguous {
		return fateAmbiguous, 0, nil
	}

	// Fault-map programming: diagnosis plus directly-attributed members.
	degr, err := core.MapOut(supers)
	if errors.Is(err, core.ErrChipkill) {
		return fateChipkill, 0, nil
	}
	if errors.Is(err, core.ErrDead) {
		return fateDead, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("fab: map-out of %v: %w", supers, err)
	}
	_ = degr // the member-identity set below carries the same information
	mapped := map[[2]int]bool{}
	for _, s := range supers {
		g, m, ok := memberOf(s)
		if !ok {
			return 0, 0, fmt.Errorf("fab: diagnosis implicated unknown super %q", s)
		}
		mapped[[2]int{int(g), m}] = true
	}
	for _, d := range defs {
		if d.kind == defDirect {
			mapped[[2]int{int(d.group), d.member}] = true
		}
	}
	var cfg yield.CoreConfig
	for key := range mapped {
		switch area.Group(key[0]) {
		case area.Frontend:
			cfg.FEDown++
		case area.IntIQ:
			cfg.IntIQDown++
		case area.FPIQ:
			cfg.FPIQDown++
		case area.LSQ:
			cfg.LSQDown++
		case area.IntBE:
			cfg.IntBEDown++
		case area.FPBE:
			cfg.FPBEDown++
		}
	}
	if cfg.FEDown > 1 || cfg.IntIQDown > 1 || cfg.FPIQDown > 1 ||
		cfg.LSQDown > 1 || cfg.IntBEDown > 1 || cfg.FPBEDown > 1 {
		return fateDead, 0, nil
	}

	// Test escapes: an undetected defect in a member that was NOT mapped
	// out stays active — the die ships and fails in the field. (An
	// escaped defect inside a disabled member is harmless.)
	for _, d := range defs {
		switch d.kind {
		case defCKLogic:
			// reaching here means no CHIPKILL diagnosis, so it escaped
			return fateFieldFail, 0, nil
		case defStruct:
			if !mapped[[2]int{int(d.group), d.member}] {
				return fateFieldFail, 0, nil
			}
		}
	}
	if len(mapped) == 0 {
		return fateClean, e.ipcOf(yield.CoreConfig{}), nil
	}
	return fateDegraded, e.ipcOf(cfg), nil
}

// ipcOf looks up a configuration's IPC (Full as the zero-config fallback).
func (e *Engine) ipcOf(cfg yield.CoreConfig) float64 {
	if v, ok := e.resc.IPC[cfg]; ok {
		return v
	}
	if cfg == (yield.CoreConfig{}) {
		return e.resc.Full
	}
	return 0
}

// sortFaults orders a fault list by (Gate, FF, Pin, StuckAt1) — the same
// deterministic campaign order MultiFaultIsolationFlow uses.
func sortFaults(fs []netlist.Fault) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Gate != b.Gate {
			return a.Gate < b.Gate
		}
		if a.FF != b.FF {
			return a.FF < b.FF
		}
		if a.Pin != b.Pin {
			return a.Pin < b.Pin
		}
		return !a.StuckAt1 && b.StuckAt1
	})
}

// meanCI returns the sample mean and its 95% normal confidence half-width.
func meanCI(xs []float64) (mean, ci float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 1.96 * sd / math.Sqrt(n)
}
