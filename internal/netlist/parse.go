package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseVerilog reads the structural Verilog subset emitted by WriteVerilog
// and reconstructs the netlist: module ports, wire/reg declarations, gate
// primitive instances, mux/tie assigns, the flip-flop always block (with
// component tags recovered from the emitted comments), and output port
// assigns. Input port order, FF order, and output port order are preserved,
// so scan chains and observation points of a reparsed netlist line up with
// the original's — the round-trip fuzz target relies on that to check
// functional equivalence index-by-index.
//
// The parser never panics on malformed input; every structural problem
// (unknown identifier, duplicate driver, bad gate arity, combinational
// cycle, unbound output port) is reported as an error. That makes it a
// safe target for byte-level fuzzing.
func ParseVerilog(r io.Reader) (*Netlist, error) {
	p := &vparser{
		wires:    map[string]bool{},
		regs:     map[string]bool{},
		gateOut:  map[string]bool{},
		ffQ:      map[string]bool{},
		outBinds: map[string]string{},
		curComp:  "<anon>",
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := p.line(sc.Text()); err != nil {
			return nil, fmt.Errorf("verilog line %d: %w", lineNo, err)
		}
		if p.done {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !p.done {
		return nil, fmt.Errorf("verilog: missing endmodule")
	}
	return p.build()
}

type vGate struct {
	kind GateKind
	out  string
	ins  []string
	comp string
}

type vFF struct{ q, d, name, comp string }

type vparser struct {
	modName  string
	inPorts  []string
	outPorts []string
	inputs   map[string]bool
	wires    map[string]bool
	regs     map[string]bool
	gates    []vGate
	gateOut  map[string]bool // wires already driven by a parsed gate
	ffs      []vFF
	ffQ      map[string]bool   // regs already assigned in the always block
	outBinds map[string]string // output port -> driving net

	curComp  string
	inModule bool
	inPorts_ bool
	inAlways bool
	done     bool
}

var vPrims = map[string]GateKind{
	"and": And, "or": Or, "nand": Nand, "nor": Nor,
	"xor": Xor, "xnor": Xnor, "not": Not, "buf": Buf,
}

func (p *vparser) line(raw string) error {
	code, comment := raw, ""
	if i := strings.Index(raw, "//"); i >= 0 {
		code, comment = raw[:i], strings.TrimSpace(raw[i+2:])
	}
	code = strings.TrimSpace(code)

	if code == "" {
		if rest, ok := strings.CutPrefix(comment, "component:"); ok {
			p.curComp = strings.TrimSpace(rest)
		}
		return nil
	}

	switch {
	case strings.HasPrefix(code, "module "):
		if p.inModule {
			return fmt.Errorf("nested module")
		}
		f := strings.Fields(code)
		if len(f) < 2 {
			return fmt.Errorf("bad module header %q", code)
		}
		p.modName = strings.TrimSuffix(f[1], "(")
		p.inModule, p.inPorts_ = true, true
		p.inputs = map[string]bool{}
		return nil

	case !p.inModule:
		return fmt.Errorf("statement %q before module header", code)

	case p.inPorts_:
		if code == ");" {
			p.inPorts_ = false
			return nil
		}
		port := strings.TrimSuffix(code, ",")
		switch {
		case strings.HasPrefix(port, "input wire "):
			name := strings.TrimSpace(strings.TrimPrefix(port, "input wire "))
			if name == "clk" {
				return nil
			}
			if !identOK(name) {
				return fmt.Errorf("bad input port %q", name)
			}
			if p.inputs[name] {
				return fmt.Errorf("duplicate input port %q", name)
			}
			p.inputs[name] = true
			p.inPorts = append(p.inPorts, name)
			return nil
		case strings.HasPrefix(port, "output wire "):
			name := strings.TrimSpace(strings.TrimPrefix(port, "output wire "))
			if !identOK(name) {
				return fmt.Errorf("bad output port %q", name)
			}
			for _, o := range p.outPorts {
				if o == name {
					return fmt.Errorf("duplicate output port %q", name)
				}
			}
			p.outPorts = append(p.outPorts, name)
			return nil
		}
		return fmt.Errorf("bad port declaration %q", port)

	case p.inAlways:
		if code == "end" {
			p.inAlways = false
			return nil
		}
		return p.ffLine(code, comment)

	case code == "endmodule":
		p.done = true
		return nil

	case strings.HasPrefix(code, "always "):
		p.inAlways = true
		return nil

	case strings.HasPrefix(code, "wire "):
		return p.decl(code, "wire ", p.wires)

	case strings.HasPrefix(code, "reg "):
		return p.decl(code, "reg ", p.regs)

	case strings.HasPrefix(code, "assign "):
		return p.assign(code, comment)

	default:
		return p.instance(code)
	}
}

func (p *vparser) decl(code, prefix string, set map[string]bool) error {
	name := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(code, prefix)), ";")
	if !identOK(name) {
		return fmt.Errorf("bad %sdeclaration %q", prefix, code)
	}
	if p.inputs[name] || p.wires[name] || p.regs[name] {
		return fmt.Errorf("duplicate declaration of %q", name)
	}
	set[name] = true
	return nil
}

// ffLine parses one always-block statement: "Q <= D; // name (component C)".
func (p *vparser) ffLine(code, comment string) error {
	lhs, rhs, ok := strings.Cut(code, "<=")
	if !ok {
		return fmt.Errorf("bad flip-flop statement %q", code)
	}
	q := strings.TrimSpace(lhs)
	d := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rhs), ";"))
	if !identOK(q) || !identOK(d) {
		return fmt.Errorf("bad flip-flop statement %q", code)
	}
	if !p.regs[q] {
		return fmt.Errorf("flip-flop target %q is not a declared reg", q)
	}
	if p.ffQ[q] {
		return fmt.Errorf("reg %q assigned twice", q)
	}
	p.ffQ[q] = true
	name, comp := q, "<anon>"
	if pre, post, ok := strings.Cut(comment, "(component "); ok {
		if nm := strings.TrimSpace(pre); nm != "" {
			name = nm
		}
		comp = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(post), ")"))
	}
	p.ffs = append(p.ffs, vFF{q: q, d: d, name: name, comp: comp})
	return nil
}

// assign handles the three assign forms WriteVerilog emits: tie cells
// ("x = 1'b0"), mux2 ("x = sel ? b : a"), and output port bindings
// ("o_x = net").
func (p *vparser) assign(code, comment string) error {
	body := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(code, "assign ")), ";")
	lhs, rhs, ok := strings.Cut(body, "=")
	if !ok {
		return fmt.Errorf("bad assign %q", code)
	}
	lhs, rhs = strings.TrimSpace(lhs), strings.TrimSpace(rhs)
	if !identOK(lhs) {
		return fmt.Errorf("bad assign target %q", lhs)
	}
	switch {
	case rhs == "1'b0" || rhs == "1'b1":
		k := Const0
		if rhs == "1'b1" {
			k = Const1
		}
		return p.addGate(k, lhs, nil)
	case strings.Contains(rhs, "?"):
		selS, tail, _ := strings.Cut(rhs, "?")
		tS, fS, ok := strings.Cut(tail, ":")
		sel, tv, fv := strings.TrimSpace(selS), strings.TrimSpace(tS), strings.TrimSpace(fS)
		if !ok || !identOK(sel) || !identOK(tv) || !identOK(fv) {
			return fmt.Errorf("bad mux assign %q", code)
		}
		// emitted as "sel ? b : a" for Mux2 inputs [sel, a, b]
		return p.addGate(Mux2, lhs, []string{sel, fv, tv})
	case identOK(rhs):
		for _, o := range p.outPorts {
			if o == lhs {
				if _, dup := p.outBinds[lhs]; dup {
					return fmt.Errorf("output port %q assigned twice", lhs)
				}
				p.outBinds[lhs] = rhs
				return nil
			}
		}
		return fmt.Errorf("assign to %q, which is not an output port", lhs)
	}
	return fmt.Errorf("unsupported assign %q", code)
}

// instance parses a primitive gate instance: "and g3 (out, a, b);".
func (p *vparser) instance(code string) error {
	open := strings.Index(code, "(")
	close_ := strings.LastIndex(code, ")")
	if open < 0 || close_ < open || !strings.HasSuffix(strings.TrimSpace(code[close_:]), ");") {
		return fmt.Errorf("unrecognized statement %q", code)
	}
	head := strings.Fields(code[:open])
	if len(head) != 2 {
		return fmt.Errorf("bad gate instance %q", code)
	}
	kind, ok := vPrims[head[0]]
	if !ok {
		return fmt.Errorf("unknown primitive %q", head[0])
	}
	var conns []string
	for _, c := range strings.Split(code[open+1:close_], ",") {
		c = strings.TrimSpace(c)
		if !identOK(c) {
			return fmt.Errorf("bad connection %q in %q", c, code)
		}
		conns = append(conns, c)
	}
	if len(conns) < 2 {
		return fmt.Errorf("gate instance %q needs an output and at least one input", code)
	}
	return p.addGate(kind, conns[0], conns[1:])
}

func (p *vparser) addGate(kind GateKind, out string, ins []string) error {
	switch kind {
	case Not, Buf:
		if len(ins) != 1 {
			return fmt.Errorf("%v gate %q needs exactly 1 input, got %d", kind, out, len(ins))
		}
	case Mux2:
		if len(ins) != 3 {
			return fmt.Errorf("mux %q needs 3 inputs, got %d", out, len(ins))
		}
	case Const0, Const1:
		if len(ins) != 0 {
			return fmt.Errorf("tie %q takes no inputs", out)
		}
	default:
		if len(ins) < 2 {
			return fmt.Errorf("%v gate %q needs at least 2 inputs, got %d", kind, out, len(ins))
		}
	}
	if !p.wires[out] {
		return fmt.Errorf("gate output %q is not a declared wire", out)
	}
	if p.gateOut[out] {
		return fmt.Errorf("wire %q driven twice", out)
	}
	p.gateOut[out] = true
	p.gates = append(p.gates, vGate{kind: kind, out: out, ins: ins, comp: p.curComp})
	return nil
}

// build assembles the parsed declarations into a Netlist, creating gates in
// topological order via a worklist (the emitter groups gates by component,
// so file order is not evaluation order).
func (p *vparser) build() (*Netlist, error) {
	n := New(p.modName)
	byName := map[string]NetID{}
	for _, in := range p.inPorts {
		byName[in] = n.Input(in)
	}
	// FF Q nets exist before any logic — they are sequential sources.
	ffIDs := make([]FFID, len(p.ffs))
	for i, ff := range p.ffs {
		n.SetCurrentComp(n.Component(ff.comp))
		id, q := n.DeclFF(ff.name)
		n.nets[q].name = ff.q // reg identifier wins for re-emission stability
		byName[ff.q] = q
		ffIDs[i] = id
	}
	for q := range p.regs {
		if _, ok := byName[q]; !ok {
			return nil, fmt.Errorf("verilog: reg %q never assigned in always block", q)
		}
	}

	built := make([]bool, len(p.gates))
	for remaining := len(p.gates); remaining > 0; {
		progress := false
		for gi := range p.gates {
			if built[gi] {
				continue
			}
			g := &p.gates[gi]
			ins := make([]NetID, len(g.ins))
			ready := true
			for i, name := range g.ins {
				id, ok := byName[name]
				if !ok {
					if !p.wires[name] {
						return nil, fmt.Errorf("verilog: gate %q reads undeclared net %q", g.out, name)
					}
					ready = false
					break
				}
				ins[i] = id
			}
			if !ready {
				continue
			}
			n.SetCurrentComp(n.Component(g.comp))
			out := n.AddGate(g.kind, ins...)
			n.nets[out].name = g.out
			byName[g.out] = out
			built[gi] = true
			remaining--
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("verilog: combinational cycle or undriven wire among gate instances")
		}
	}
	for w := range p.wires {
		if _, ok := byName[w]; !ok {
			return nil, fmt.Errorf("verilog: wire %q declared but never driven", w)
		}
	}

	for i, ff := range p.ffs {
		d, ok := byName[ff.d]
		if !ok {
			return nil, fmt.Errorf("verilog: flip-flop %q captures unknown net %q", ff.q, ff.d)
		}
		n.BindFFD(ffIDs[i], d)
	}

	for _, port := range p.outPorts {
		net, ok := p.outBinds[port]
		if !ok {
			return nil, fmt.Errorf("verilog: output port %q never assigned", port)
		}
		id, ok := byName[net]
		if !ok {
			return nil, fmt.Errorf("verilog: output port %q bound to unknown net %q", port, net)
		}
		n.Output(id, "")
	}

	n.SetCurrentComp(0)
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// identOK reports whether s is a plain Verilog identifier of the form the
// emitter produces (letters, digits, underscore; no leading digit).
func identOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
