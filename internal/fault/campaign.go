package fault

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rescue/internal/netlist"
)

// Stats counts what a campaign (or one of its runs) actually did — the
// observability record the CLIs print.
type Stats struct {
	Faults     int64 // fault simulations performed
	Detected   int64 // faults the pattern set detected
	Dropped    int64 // (fault, word) sims skipped after the failing-bit cap hit
	Words      int64 // (fault, word) pairs event-simulated
	Events     int64 // gate evaluations performed
	Rehydrated int64 // results restored from a checkpoint journal, not simulated
	Wall       time.Duration
	Workers    int
}

// Add accumulates another run's stats (wall times sum; workers keep the max).
func (s *Stats) Add(o Stats) {
	s.Faults += o.Faults
	s.Detected += o.Detected
	s.Dropped += o.Dropped
	s.Words += o.Words
	s.Events += o.Events
	s.Rehydrated += o.Rehydrated
	s.Wall += o.Wall
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
}

// ErrCampaignBusy is returned when Run/RunWords is called while another run
// on the same Campaign is still in flight. Overlapping runs would share the
// per-worker scratch state and corrupt both results silently; the guard
// turns that latent hazard into an immediate error.
var ErrCampaignBusy = errors.New("fault: campaign already running — Run/RunWords calls must not overlap")

// ErrChaosCancel is the cancellation cause injected by the chaos harness
// (ChaosCancelAfterSims) to simulate an operator interrupt at a
// deterministic amount of completed work.
var ErrChaosCancel = errors.New("fault: chaos harness simulated an interrupt")

// PanicError reports a panic recovered inside a campaign worker. The
// offending fault index is preserved so the defect is reproducible with a
// single serial simulation; sibling workers are cancelled and drain at the
// next chunk boundary, so one bad fault site cannot take down the process.
type PanicError struct {
	FaultIndex int    // index into the run's fault slice (-1 if outside a sim)
	Value      any    // the recovered panic value
	Stack      []byte // stack of the panicking worker
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("fault: campaign worker panicked on fault index %d: %v", e.FaultIndex, e.Value)
}

// Interrupted reports whether err is a cooperative-cancellation outcome —
// a caller context cancel/deadline or a chaos-harness interrupt — as
// opposed to a hard failure such as a worker panic. Interrupted runs leave
// valid journaled work behind and are the ones worth resuming.
func Interrupted(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrChaosCancel)
}

// Chaos harness: an armed process-wide simulation budget. Once the total
// number of fault simulations crosses the limit, every running campaign
// cancels itself (cause ErrChaosCancel) at its next chunk boundary — a
// deterministic stand-in for Ctrl-C used by CI's kill-and-resume checks.
var (
	chaosLimit atomic.Int64
	chaosSims  atomic.Int64
)

// ChaosCancelAfterSims arms (n > 0) or disarms (n <= 0) the chaos budget
// and resets the simulation counter. Rehydrated checkpoint results do not
// count against the budget, so a resumed run proceeds past the point where
// the previous run was "killed".
func ChaosCancelAfterSims(n int64) {
	chaosSims.Store(0)
	chaosLimit.Store(n)
}

func chaosTripped() bool {
	limit := chaosLimit.Load()
	return limit > 0 && chaosSims.Load() >= limit
}

// campaignSimHook, when non-nil, runs before every fault simulation. The
// chaos tests use it to inject panics and cancellations at exact fault
// indices; it must be set before any campaign starts and never during one.
var campaignSimHook func(faultIndex int)

// CampaignConfig tunes a fault-simulation campaign.
type CampaignConfig struct {
	// Workers is the concurrency degree; <= 0 means runtime.NumCPU().
	Workers int
	// MaxFail caps failing bits collected per fault (0 = unlimited —
	// required by isolation/dictionary flows that need full FailObs sets).
	MaxFail int
	// Drop enables fault dropping: once a fault is detected by some word,
	// later pattern words are skipped for it (coverage-only mode; forces an
	// effective MaxFail of at least 1). Must stay off when callers need
	// every failing observation point.
	Drop bool
	// Chunk is the dispatch batch size; <= 0 picks one from the fault count.
	Chunk int
	// Progress, when non-nil, is called once per completed chunk with the
	// cumulative (done, total) fault counts — see ProgressFunc. It combines
	// with any hook installed via WithProgress on the run's context. Unset
	// on both paths, the hot loop pays only a nil check.
	Progress ProgressFunc
}

// Campaign shards a fault list across workers that share one read-only
// simCore (good-machine images, cones, SoA gate arrays, obs map) while
// each owns a private simScratch, so no synchronization touches the hot
// loop. Results are always ordered by fault index and bit-identical to
// the serial path regardless of worker count.
//
// Worker scratches come from a grow-only pool on the simCore, shared by
// every campaign over the same simulator, so steady-state runs allocate
// no scratch state at all. Calls must not overlap: an atomic in-use guard
// rejects a second concurrent run with ErrCampaignBusy. The underlying
// Sim's pattern set must not grow during a run.
type Campaign struct {
	cfg   CampaignConfig
	core  *simCore
	inUse atomic.Bool
}

// NewCampaign prepares a campaign over s's netlist and pattern set.
func NewCampaign(s *Sim, cfg CampaignConfig) *Campaign {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Drop && cfg.MaxFail <= 0 {
		cfg.MaxFail = 1
	}
	return &Campaign{cfg: cfg, core: &s.simCore}
}

// Workers reports the configured concurrency degree.
func (c *Campaign) Workers() int { return c.cfg.Workers }

// Run simulates every fault against the full pattern set. Cancellation is
// cooperative at chunk granularity: when ctx is cancelled, in-flight chunks
// finish, results computed so far stay valid in the returned slice, and the
// error carries the cancellation cause (or a PanicError if a worker died).
func (c *Campaign) Run(ctx context.Context, faults []netlist.Fault) ([]Result, Stats, error) {
	return c.run(ctx, nil, faults, 0, len(c.core.Patterns))
}

// RunWords simulates every fault against pattern words [wLo, wHi) only —
// the campaign form of the ATPG per-word fault-dropping loop.
func (c *Campaign) RunWords(ctx context.Context, faults []netlist.Fault, wLo, wHi int) ([]Result, Stats, error) {
	return c.run(ctx, nil, faults, wLo, wHi)
}

// RunCheckpoint is Run with a checkpoint journal: chunks already journaled
// by a previous (interrupted) identical run are skipped and their results
// rehydrated; newly completed chunks are appended to the journal and
// flushed crash-safely. A nil checkpoint degrades to plain Run.
func (c *Campaign) RunCheckpoint(ctx context.Context, ck *Checkpoint, faults []netlist.Fault) ([]Result, Stats, error) {
	return c.run(ctx, ck, faults, 0, len(c.core.Patterns))
}

// RunWordsCheckpoint is RunWords with a checkpoint journal.
func (c *Campaign) RunWordsCheckpoint(ctx context.Context, ck *Checkpoint, faults []netlist.Fault, wLo, wHi int) ([]Result, Stats, error) {
	return c.run(ctx, ck, faults, wLo, wHi)
}

func (c *Campaign) run(ctx context.Context, ck *Checkpoint, faults []netlist.Fault, wLo, wHi int) ([]Result, Stats, error) {
	if !c.inUse.CompareAndSwap(false, true) {
		return nil, Stats{}, ErrCampaignBusy
	}
	defer c.inUse.Store(false)

	start := time.Now()
	out := make([]Result, len(faults))
	workers := c.cfg.Workers
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers < 1 {
		workers = 1
	}

	var st Stats
	st.Workers = workers

	progress := combineProgress(c.cfg.Progress, ProgressFromContext(ctx))
	total := int64(len(faults))
	var progressDone atomic.Int64

	// The campaign's content identity, needed by the checkpoint journal and
	// by the shard machinery; skipped entirely (it walks the fault list and
	// pattern window) when neither is in play.
	tgt := shardTargetFrom(ctx)
	plan := shardPlanFrom(ctx)
	var id CampaignKey
	if ck != nil || tgt != nil || plan != nil {
		id = campaignIdentity(c.core, faults, wLo, wHi, c.cfg)
	}

	// Shard-worker path: this campaign is the one a coordinator assigned a
	// window of. Simulate only that window and stop the flow.
	if tgt != nil && tgt.claim(id) {
		return c.runWindow(ctx, tgt.res, faults, wLo, wHi, progress, start)
	}

	// Bind the next journal section and rehydrate completed chunks.
	var sec *ckSection
	var done []bool
	if ck != nil {
		var err error
		sec, err = ck.section(id)
		if err != nil {
			return nil, st, err
		}
		done, st.Rehydrated = sec.restore(out)
		if progress != nil && st.Rehydrated > 0 {
			progressDone.Store(st.Rehydrated)
			progress(st.Rehydrated, total)
		}
		if st.Rehydrated == int64(len(faults)) {
			// Everything was journaled; nothing to simulate.
			st.Wall = time.Since(start)
			return out, st, ck.Flush()
		}
	}

	if err := ctx.Err(); err != nil {
		return out, st, context.Cause(ctx)
	}

	scrs := c.core.acquireScratch(workers)
	defer c.core.releaseScratch(scrs)
	// Coordinator path: fan this campaign's pending ranges out to remote
	// workers first. Shards that fail to dispatch stay pending and the
	// local worker pool below picks them up — local fallback is the default
	// code path, not a special case.
	if plan.eligible(len(faults), wLo, wHi, len(c.core.Patterns)) {
		done = c.dispatchShards(ctx, plan, id, out, sec, done, progress, &progressDone, total, &st)
		if err := ctx.Err(); err != nil {
			if ck != nil {
				if ferr := ck.Flush(); ferr != nil {
					return out, st, ferr
				}
			}
			return out, st, context.Cause(ctx)
		}
	}

	q := newChunkQueue(len(faults), workers, c.cfg.Chunk)
	perWorker := make([]Stats, workers)

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	// Periodic crash-safety flush while the run is in flight: a hard kill
	// loses at most the last flush interval of completed chunks.
	var flusherDone chan struct{}
	if ck != nil {
		flusherDone = make(chan struct{})
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-flusherDone:
					return
				case <-t.C:
					_ = ck.Flush()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := -1
			defer func() {
				if r := recover(); r != nil {
					cancel(&PanicError{FaultIndex: cur, Value: r, Stack: debug.Stack()})
				}
			}()
			scr := scrs[w]
			wst := &perWorker[w]
			words0, events0 := scr.words, scr.events
			for {
				// Cooperative cancellation at chunk granularity: a cancelled
				// (or chaos-tripped) worker stops claiming new chunks but the
				// chunk in flight always completes and gets journaled.
				if runCtx.Err() != nil {
					break
				}
				if chaosTripped() {
					cancel(ErrChaosCancel)
					break
				}
				lo, hi, ok := q.next(w)
				if !ok {
					break
				}
				fresh := c.simChunk(scr, faults, out, done, lo, hi, wLo, wHi, wst, &cur)
				if sec != nil {
					sec.record(lo, hi, out, done)
				}
				if progress != nil && fresh > 0 {
					progress(progressDone.Add(int64(fresh)), total)
				}
			}
			wst.Words = scr.words - words0
			wst.Events = scr.events - events0
		}(w)
	}
	wg.Wait()
	if flusherDone != nil {
		close(flusherDone)
	}

	for i := range perWorker {
		st.Faults += perWorker[i].Faults
		st.Detected += perWorker[i].Detected
		st.Dropped += perWorker[i].Dropped
		st.Words += perWorker[i].Words
		st.Events += perWorker[i].Events
	}
	st.Wall = time.Since(start)

	err := context.Cause(runCtx)
	if ck != nil {
		// Flush even on error: an interrupted run's completed chunks are
		// exactly what the resume rehydrates.
		if ferr := ck.Flush(); err == nil {
			err = ferr
		}
	}
	return out, st, err
}

// runWindow is the shard-worker execution path entered from run when a
// WithShardTarget assignment claims this campaign: simulate only fault
// indices [res.Lo, res.Hi), seal them into the collector, and return
// ErrShardDone so the surrounding flow stops instead of computing work the
// coordinator never asked for. The window runs on the same scratch pool
// and chunk queue as a full campaign, so its results are bit-identical to
// the same indices of a local run at any worker count. Shard windows are
// not journaled: a failed shard is retried wholesale, and idempotence
// comes from the content digest, not from resume.
func (c *Campaign) runWindow(ctx context.Context, res *ShardResult, faults []netlist.Fault,
	wLo, wHi int, progress ProgressFunc, start time.Time) ([]Result, Stats, error) {

	lo, hi := res.Lo, res.Hi
	var st Stats
	if lo < 0 || hi <= lo || hi > len(faults) {
		return nil, st, fmt.Errorf("fault: shard window [%d,%d) out of range for %d faults", lo, hi, len(faults))
	}
	n := hi - lo
	out := make([]Result, len(faults))
	workers := c.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	st.Workers = workers
	total := int64(n)
	var progressDone atomic.Int64

	if err := ctx.Err(); err != nil {
		return out, st, context.Cause(ctx)
	}
	scrs := c.core.acquireScratch(workers)
	defer c.core.releaseScratch(scrs)
	q := newChunkQueue(n, workers, c.cfg.Chunk)
	perWorker := make([]Stats, workers)

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := -1
			defer func() {
				if r := recover(); r != nil {
					cancel(&PanicError{FaultIndex: cur, Value: r, Stack: debug.Stack()})
				}
			}()
			scr := scrs[w]
			wst := &perWorker[w]
			words0, events0 := scr.words, scr.events
			for {
				if runCtx.Err() != nil {
					break
				}
				if chaosTripped() {
					cancel(ErrChaosCancel)
					break
				}
				wlo, whi, ok := q.next(w)
				if !ok {
					break
				}
				c.simChunk(scr, faults, out, nil, lo+wlo, lo+whi, wLo, wHi, wst, &cur)
				if progress != nil {
					progress(progressDone.Add(int64(whi-wlo)), total)
				}
			}
			wst.Words = scr.words - words0
			wst.Events = scr.events - events0
		}(w)
	}
	wg.Wait()

	for i := range perWorker {
		st.Faults += perWorker[i].Faults
		st.Detected += perWorker[i].Detected
		st.Dropped += perWorker[i].Dropped
		st.Words += perWorker[i].Words
		st.Events += perWorker[i].Events
	}
	st.Wall = time.Since(start)

	if err := context.Cause(runCtx); err != nil {
		// A cancelled or panicking window is a real failure, never
		// ErrShardDone: the coordinator must not merge a partial shard.
		return out, st, err
	}
	res.Results = append([]Result(nil), out[lo:hi]...)
	res.Stats = st
	res.seal()
	return out, st, ErrShardDone
}

// tileState carries one fault's accumulated result across the word tiles
// of the batched campaign path.
type tileState struct {
	idx   int // index into the run's fault slice
	f     netlist.Fault
	res   Result
	words int64 // (fault, word) pairs actually simulated so far
}

// wordTileSize is the pattern-word batch the tiled campaign path feeds
// each in-flight fault before moving to the next fault of the chunk. One
// excitation-index block (64 words) per window: each simWords call then
// reads exactly one excitation word per fault, the per-window prologue
// (seed resolution, excitation-row slicing) is paid once per block, and
// a chunk of faults still streams over the same good-image rows while
// they are cache-hot.
const wordTileSize = 64

// simChunk simulates fault indices [lo, hi) into out, skipping entries
// marked done, and returns the number of freshly simulated faults. With
// MaxFail == 1 (detection-only mode, the ATPG/fab workhorse) and a
// multi-word window it takes the pattern×fault tiled path; every other
// configuration runs each fault's full word range in one call. cur tracks
// the in-flight fault index for the worker's panic recovery.
func (c *Campaign) simChunk(scr *simScratch, faults []netlist.Fault, out []Result,
	done []bool, lo, hi, wLo, wHi int, wst *Stats, cur *int) int {

	maxFail := c.cfg.MaxFail
	if maxFail == 1 && wHi-wLo > 1 {
		return c.simChunkTiled(scr, faults, out, done, lo, hi, wLo, wHi, wst, cur)
	}
	nWords := int64(wHi - wLo)
	fresh := 0
	for i := lo; i < hi; i++ {
		if done != nil && done[i] {
			continue
		}
		fresh++
		*cur = i
		if campaignSimHook != nil {
			campaignSimHook(i)
		}
		chaosSims.Add(1)
		before := scr.words
		out[i] = c.core.run(scr, faults[i], maxFail, wLo, wHi)
		wst.Faults++
		if out[i].Detected {
			wst.Detected++
		}
		if maxFail > 0 {
			wst.Dropped += nWords - (scr.words - before)
		}
	}
	*cur = -1
	return fresh
}

// simChunkTiled is simChunk's word-major variant: the chunk's pending
// faults advance through the pattern set wordTileSize words at a time, so
// one tile's good-machine images are reused across every fault of the
// chunk before the next tile is touched. Valid only for MaxFail == 1,
// where it is result-identical to the fault-major order: a capped fault's
// entire failure content comes from its single capping word (simulated in
// exactly one tile call), and an uncapped fault accumulates nothing, so
// splitting a fault's word range across beginFault epochs cannot change
// any Result. Faults drop out of the tile set the moment they cap, which
// is what makes drop-mode campaigns word-order sensitive to begin with —
// the per-fault words simulated (and Stats.Dropped) match the fault-major
// path exactly.
func (c *Campaign) simChunkTiled(scr *simScratch, faults []netlist.Fault, out []Result,
	done []bool, lo, hi, wLo, wHi int, wst *Stats, cur *int) int {

	nWords := int64(wHi - wLo)
	tiles := scr.tiles[:0]
	for i := lo; i < hi; i++ {
		if done != nil && done[i] {
			continue
		}
		*cur = i
		if campaignSimHook != nil {
			campaignSimHook(i)
		}
		chaosSims.Add(1)
		tiles = append(tiles, tileState{idx: i, f: faults[i]})
	}
	*cur = -1
	fresh := len(tiles)
	for w := wLo; w < wHi && len(tiles) > 0; w += wordTileSize {
		tw := w + wordTileSize
		if tw > wHi {
			tw = wHi
		}
		keep := tiles[:0]
		for ti := range tiles {
			t := &tiles[ti]
			*cur = t.idx
			words0 := scr.words
			c.core.beginFault(scr)
			capped := c.core.simWords(scr, t.f, &t.res, 1, w, tw)
			t.words += scr.words - words0
			if capped {
				out[t.idx] = t.res
				wst.Faults++
				if t.res.Detected {
					wst.Detected++
				}
				wst.Dropped += nWords - t.words
			} else {
				keep = append(keep, *t)
			}
		}
		*cur = -1
		tiles = keep
	}
	for ti := range tiles {
		t := &tiles[ti]
		out[t.idx] = t.res
		wst.Faults++
		if t.res.Detected {
			wst.Detected++
		}
		wst.Dropped += nWords - t.words
	}
	// Scrub the reusable tile arena so finished Results don't stay
	// reachable through the scratch between runs.
	tiles = tiles[:cap(tiles)]
	for ti := range tiles {
		tiles[ti] = tileState{}
	}
	scr.tiles = tiles[:0]
	return fresh
}

// chunkQueue is a work-stealing dispatch queue over fault indices [0, n):
// the range is pre-split into one contiguous segment per worker, each
// consumed front-to-back in fixed-size chunks via an atomic cursor. A
// worker that drains its own segment steals chunks from the segment with
// the most work remaining, so one fault with a huge propagation region
// (or a skewed segment) cannot stall the rest of the pool.
type chunkQueue struct {
	segs  []chunkSeg
	chunk int64
}

type chunkSeg struct {
	pos atomic.Int64 // next unclaimed index
	end int64        // one past the last index (immutable)
	_   [6]int64     // keep cursors on separate cache lines
}

func newChunkQueue(n, workers, chunk int) *chunkQueue {
	if chunk <= 0 {
		// Small chunks keep stealing effective; larger ones amortize the
		// atomic op. ~16 chunks per worker balances both.
		chunk = n / (workers * 16)
		if chunk < 1 {
			chunk = 1
		}
		if chunk > 256 {
			chunk = 256
		}
	}
	q := &chunkQueue{segs: make([]chunkSeg, workers), chunk: int64(chunk)}
	per := n / workers
	rem := n % workers
	lo := 0
	for i := range q.segs {
		hi := lo + per
		if i < rem {
			hi++
		}
		q.segs[i].pos.Store(int64(lo))
		q.segs[i].end = int64(hi)
		lo = hi
	}
	return q
}

// take claims the next chunk of segment i, if any.
func (q *chunkQueue) take(i int) (lo, hi int, ok bool) {
	s := &q.segs[i]
	for {
		p := s.pos.Load()
		if p >= s.end {
			return 0, 0, false
		}
		h := p + q.chunk
		if h > s.end {
			h = s.end
		}
		if s.pos.CompareAndSwap(p, h) {
			return int(p), int(h), true
		}
	}
}

// next returns worker self's next chunk: its own segment first, then a
// steal from the fullest remaining segment.
func (q *chunkQueue) next(self int) (lo, hi int, ok bool) {
	if lo, hi, ok = q.take(self); ok {
		return lo, hi, true
	}
	for {
		best, bestRem := -1, int64(0)
		for i := range q.segs {
			if rem := q.segs[i].end - q.segs[i].pos.Load(); rem > bestRem {
				best, bestRem = i, rem
			}
		}
		if best < 0 {
			return 0, 0, false
		}
		if lo, hi, ok = q.take(best); ok {
			return lo, hi, true
		}
	}
}
