package ici

import (
	"testing"
)

// figure3a builds the paper's Figure 3a: LCW and LCX read sources; LCY and
// LCZ both read LCX (and LCW feeds LCZ... in the figure LCY,LCZ read LCX;
// LCW feeds only LCZ). Both LCY and LCZ write latches.
func figure3a() (*Graph, map[string]NodeID) {
	g := NewGraph()
	ids := map[string]NodeID{}
	add := func(name string, k NodeKind) NodeID {
		id := g.Add(name, k)
		ids[name] = id
		return id
	}
	in := add("in", Source)
	lcw := add("LCW", Logic)
	lcx := add("LCX", Logic)
	lcy := add("LCY", Logic)
	lcz := add("LCZ", Logic)
	ly := add("Ly", Latch)
	lz := add("Lz", Latch)
	g.Connect(in, lcw)
	g.Connect(in, lcx)
	g.Connect(lcx, lcy)
	g.Connect(lcx, lcz)
	g.Connect(lcw, lcz)
	g.Connect(lcy, ly)
	g.Connect(lcz, lz)
	return g, ids
}

func TestViolationsFigure3a(t *testing.T) {
	g, ids := figure3a()
	v := g.Violations()
	if len(v) != 3 {
		t.Fatalf("violations = %v, want 3 (X->Y, X->Z, W->Z)", v)
	}
	if g.CheckICI() {
		t.Fatal("Figure 3a must not satisfy ICI")
	}
	// all four LCs collapse into one super-component
	sc := g.SuperComponents()
	if len(sc) != 1 || len(sc[0]) != 4 {
		t.Fatalf("super-components = %v", sc)
	}
	_ = ids
}

func TestCycleSplitFigure3b(t *testing.T) {
	g, ids := figure3a()
	// split every logic->logic edge (Figure 3b splits X from Y/Z; the W->Z
	// edge needs splitting too for full ICI)
	for _, v := range g.Violations() {
		if _, err := g.CycleSplit(v.From, v.To); err != nil {
			t.Fatal(err)
		}
	}
	if !g.CheckICI() {
		t.Fatalf("after cycle splitting: violations remain: %v", g.Violations())
	}
	// isolation table: every latch fed by exactly one singleton super
	for node, supers := range g.IsolationTable() {
		if len(supers) > 1 {
			t.Errorf("latch %s fed by %d supers", g.Name(node), len(supers))
		}
	}
	_ = ids
}

func TestCycleSplitErrors(t *testing.T) {
	g, ids := figure3a()
	if _, err := g.CycleSplit(ids["in"], ids["LCW"]); err == nil {
		t.Fatal("splitting a source->logic edge must fail")
	}
	if _, err := g.CycleSplit(ids["LCW"], ids["LCY"]); err == nil {
		t.Fatal("splitting a non-edge must fail")
	}
}

func TestPrivatizeFigure3c(t *testing.T) {
	g, ids := figure3a()
	// privatize LCX: one copy for LCY, one for LCZ
	copies, err := g.Privatize(ids["LCX"], [][]NodeID{{ids["LCY"]}, {ids["LCZ"]}})
	if err != nil {
		t.Fatal(err)
	}
	if len(copies) != 1 {
		t.Fatalf("copies = %v, want 1 new copy", copies)
	}
	// now LCX+LCY form one super, LCX'+LCZ+LCW form another
	sc := g.SuperComponents()
	if len(sc) != 2 {
		t.Fatalf("super-components = %v, want 2", sc)
	}
	sizes := []int{len(sc[0]), len(sc[1])}
	if sizes[0]+sizes[1] != 5 {
		t.Fatalf("super sizes = %v, want total 5 (4 LCs + 1 copy)", sizes)
	}
	// each latch is fed by exactly one super-component
	table := g.IsolationTable()
	for node, supers := range table {
		if g.Nodes[node].Kind == Latch && len(supers) != 1 {
			t.Errorf("latch %s fed by %d supers, want 1", g.Name(node), len(supers))
		}
	}
}

func TestPrivatizePartial(t *testing.T) {
	// Section 3.2.2's partial privatization: LCC..LCF read LCA; two copies
	// serve {LCC,LCD} and {LCE,LCF} -> 2 super-components.
	g := NewGraph()
	in := g.Add("in", Source)
	lca := g.Add("LCA", Logic)
	g.Connect(in, lca)
	var readers []NodeID
	for _, name := range []string{"LCC", "LCD", "LCE", "LCF"} {
		r := g.Add(name, Logic)
		g.Connect(lca, r)
		l := g.Add("L"+name, Latch)
		g.Connect(r, l)
		readers = append(readers, r)
	}
	if _, err := g.Privatize(lca, [][]NodeID{{readers[0], readers[1]}, {readers[2], readers[3]}}); err != nil {
		t.Fatal(err)
	}
	sc := g.SuperComponents()
	if len(sc) != 2 || len(sc[0]) != 3 || len(sc[1]) != 3 {
		t.Fatalf("super-components = %v, want two groups of 3", sc)
	}
}

func TestPrivatizeErrors(t *testing.T) {
	g, ids := figure3a()
	if _, err := g.Privatize(ids["LCX"], nil); err == nil {
		t.Fatal("empty groups must fail")
	}
	if _, err := g.Privatize(ids["LCX"], [][]NodeID{{ids["LCW"]}}); err == nil {
		t.Fatal("non-consumer in group must fail")
	}
	if _, err := g.Privatize(ids["LCX"], [][]NodeID{{ids["LCY"]}}); err == nil {
		t.Fatal("incomplete cover must fail")
	}
	if _, err := g.Privatize(ids["LCX"], [][]NodeID{{ids["LCY"]}, {ids["LCY"], ids["LCZ"]}}); err == nil {
		t.Fatal("duplicate consumer must fail")
	}
}

// figure4a: the single-stage loop. LCA and LCB feed LCC; LCC feeds a latch;
// the latch feeds LCA and LCB (issue-wakeup-style loop).
func figure4a() (*Graph, map[string]NodeID) {
	g := NewGraph()
	ids := map[string]NodeID{}
	add := func(name string, k NodeKind) NodeID {
		id := g.Add(name, k)
		ids[name] = id
		return id
	}
	lca := add("LCA", Logic)
	lcb := add("LCB", Logic)
	lcc := add("LCC", Logic)
	l := add("L", Latch)
	g.Connect(lca, lcc)
	g.Connect(lcb, lcc)
	g.Connect(lcc, l)
	g.Connect(l, lca)
	g.Connect(l, lcb)
	return g, ids
}

func TestDependenceRotationFigure4(t *testing.T) {
	g, ids := figure4a()
	// 4a: LCA,LCB,LCC form one super via A->C, B->C
	if sc := g.SuperComponents(); len(sc) != 1 {
		t.Fatalf("4a supers = %v, want 1", sc)
	}
	// rotate the latch across LCC: 4a -> 4b
	newLatches, err := g.RotateDependence(ids["L"])
	if err != nil {
		t.Fatal(err)
	}
	if len(newLatches) != 1 {
		t.Fatalf("rotation created %d new latches, want 1", len(newLatches))
	}
	// 4b: violations are now C->A and C->B (same count, different shape)
	v := g.Violations()
	if len(v) != 2 {
		t.Fatalf("4b violations = %v, want 2", v)
	}
	for _, viol := range v {
		if viol.From != ids["LCC"] {
			t.Fatalf("4b violation %v should originate at LCC", viol)
		}
	}
	// 4b -> 4c: privatize LCC, one copy per reader
	copies, err := g.Privatize(ids["LCC"], [][]NodeID{{ids["LCA"]}, {ids["LCB"]}})
	if err != nil {
		t.Fatal(err)
	}
	if len(copies) != 1 {
		t.Fatalf("copies = %v", copies)
	}
	// 4c: two super-components, {LCC,LCA} and {LCC',LCB}
	sc := g.SuperComponents()
	if len(sc) != 2 || len(sc[0]) != 2 || len(sc[1]) != 2 {
		t.Fatalf("4c supers = %v, want two pairs", sc)
	}
	// and every latch sees exactly one super
	for node, supers := range g.IsolationTable() {
		if len(supers) != 1 {
			t.Errorf("latch %s fed by %d supers, want 1", g.Name(node), len(supers))
		}
	}
}

func TestRotateErrors(t *testing.T) {
	g, ids := figure4a()
	if _, err := g.RotateDependence(ids["LCC"]); err == nil {
		t.Fatal("rotating a logic node must fail")
	}
	// latch with two drivers
	g2 := NewGraph()
	a := g2.Add("A", Logic)
	b := g2.Add("B", Logic)
	l := g2.Add("L", Latch)
	g2.Connect(a, l)
	g2.Connect(b, l)
	if _, err := g2.RotateDependence(l); err == nil {
		t.Fatal("rotating a multi-driver latch must fail")
	}
}

func TestRotationPreservesLoopLatency(t *testing.T) {
	// the loop LCA -> LCC -> back to LCA must still contain exactly one
	// latch after rotation (dependence rotation moves, never adds, delay)
	g, ids := figure4a()
	if _, err := g.RotateDependence(ids["L"]); err != nil {
		t.Fatal(err)
	}
	// walk the loop from LCA: LCA -> L -> LCC -> LCA
	latches := 0
	cur := ids["LCA"]
	for steps := 0; steps < 10; steps++ {
		next := g.Succs(cur)[0]
		if g.Nodes[next].Kind == Latch {
			latches++
		}
		cur = next
		if cur == ids["LCA"] {
			break
		}
	}
	if latches != 1 {
		t.Fatalf("loop contains %d latches after rotation, want 1", latches)
	}
}
