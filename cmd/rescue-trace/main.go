// Command rescue-trace records synthetic benchmark traces to the compact
// binary format and replays traces (from this tool or external producers)
// through the performance simulator.
//
// Usage:
//
//	rescue-trace record -bench gzip -n 1000000 -o gzip.rsct
//	rescue-trace replay -i gzip.rsct [-rescue] [-warmup N] [-commit N]
package main

import (
	"flag"
	"fmt"
	"os"

	"rescue/internal/trace"
	"rescue/internal/uarch"
	"rescue/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rescue-trace record|replay [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "gzip", "benchmark to record")
	n := fs.Int64("n", 1_000_000, "instructions")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "record: -o required")
		os.Exit(2)
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tw, err := trace.Record(f, workload.New(prof), *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d instructions of %s to %s (%.2f bytes/inst)\n",
		tw.Count(), *bench, *out, float64(st.Size())/float64(tw.Count()))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "trace file (required)")
	rescueMachine := fs.Bool("rescue", false, "simulate the Rescue machine (default baseline)")
	warmup := fs.Int64("warmup", 50_000, "warmup instructions")
	commit := fs.Int64("commit", 500_000, "measured instructions")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "replay: -i required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p := uarch.DefaultParams()
	if *rescueMachine {
		p = uarch.RescueParams()
	}
	sim, err := uarch.NewFromSource(p, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := sim.Run(*warmup, *commit)
	machine := "baseline"
	if *rescueMachine {
		machine = "rescue"
	}
	fmt.Printf("%s: IPC %.3f over %d instructions (%d cycles)\n",
		machine, st.IPC(), st.Committed, st.Cycles)
	if tr.Done() {
		fmt.Println("note: trace exhausted during the run (tail padded with NOPs)")
	}
	if err := tr.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "trace decode error:", err)
		os.Exit(1)
	}
}
