package fault

import (
	"reflect"
	"sort"
	"testing"

	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// bruteCone is an independent reference for the cone builder: a plain BFS
// over the reader relation from net, returning the transitive fan-out
// gate set and the reachable observation points (netlist.ObsPoints order:
// FFs by D net first, then primary outputs).
func bruteCone(n *netlist.Netlist, net netlist.NetID) (gates []netlist.GateID, obs []int) {
	readers := map[netlist.NetID][]netlist.GateID{}
	for gi := range n.Gates {
		for _, in := range n.Gates[gi].In {
			readers[in] = append(readers[in], netlist.GateID(gi))
		}
	}
	inCone := map[netlist.GateID]bool{}
	frontier := []netlist.NetID{net}
	seenNet := map[netlist.NetID]bool{net: true}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, g := range readers[cur] {
			if inCone[g] {
				continue
			}
			inCone[g] = true
			gates = append(gates, g)
			out := n.Gates[g].Out
			if !seenNet[out] {
				seenNet[out] = true
				frontier = append(frontier, out)
			}
		}
	}
	sort.Slice(gates, func(i, j int) bool { return gates[i] < gates[j] })
	for fi := 0; fi < n.NumFFs(); fi++ {
		if seenNet[n.FFs[fi].D] {
			obs = append(obs, fi)
		}
	}
	for oi, out := range n.Outputs {
		if seenNet[out] {
			obs = append(obs, n.NumFFs()+oi)
		}
	}
	return gates, obs
}

// checkConesAgainstBrute compares every net's stored cone and reachable
// observation set against the brute-force BFS, including the overflow
// predicate: a cone is withheld exactly when its true size exceeds the
// threshold (or clipping is disabled).
func checkConesAgainstBrute(t testing.TB, s *Sim, n *netlist.Netlist, threshold int) {
	t.Helper()
	for net := netlist.NetID(0); int(net) < n.NumNets(); net++ {
		bg, bo := bruteCone(n, net)
		cone, overflow := s.Cone(net)
		wantOverflow := threshold <= 0 || len(bg) > threshold
		if overflow != wantOverflow {
			t.Fatalf("net %d: overflow=%v, brute size %d vs threshold %d wants %v",
				net, overflow, len(bg), threshold, wantOverflow)
		}
		if overflow {
			if cone != nil || s.ConeObs(net) != nil {
				t.Fatalf("net %d: overflowed cone still stores data", net)
			}
			continue
		}
		sorted := append([]netlist.GateID(nil), cone...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if !reflect.DeepEqual(sorted, bg) && !(len(sorted) == 0 && len(bg) == 0) {
			t.Fatalf("net %d: cone gates %v, brute %v", net, sorted, bg)
		}
		// The stored order must be a valid evaluation schedule: levels
		// non-decreasing, so every gate follows the cone gates feeding it.
		for i := 1; i < len(cone); i++ {
			if s.level[cone[i-1]] > s.level[cone[i]] {
				t.Fatalf("net %d: cone not level-sorted at %d: %v", net, i, cone)
			}
		}
		if got := s.ConeObs(net); !reflect.DeepEqual(got, bo) && !(len(got) == 0 && len(bo) == 0) {
			t.Fatalf("net %d: cone obs %v, brute %v", net, got, bo)
		}
	}
}

func randomSimForCone(t testing.TB, seed uint64, threshold int) (*Sim, *netlist.Netlist) {
	t.Helper()
	cfg := netlist.RandomConfig{
		Seed:     seed,
		Gates:    1 + int(seed%57),
		FFs:      1 + int((seed>>8)%9),
		Inputs:   1 + int((seed>>16)%5),
		Outputs:  1 + int((seed>>24)%4),
		MaxFanIn: 2 + int((seed>>32)%4),
	}
	n := netlist.Random(cfg)
	c, err := scan.Insert(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := c.NewPattern(64)
	x := seed ^ 0x9e3779b97f4a7c15
	for i := range p.FFVals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.FFVals[i] = x
	}
	for i := range p.PIVals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.PIVals[i] = x
	}
	return NewSimCone(c, []*scan.Pattern{p}, threshold), n
}

// TestConeMatchesBruteForce pins the CSR cone builder against the BFS
// reference over random circuits at thresholds spanning disabled, mostly
// overflowing, mixed, and never overflowing.
func TestConeMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		for _, threshold := range []int{0, 1, 2, 7, 1024} {
			s, n := randomSimForCone(t, seed, threshold)
			checkConesAgainstBrute(t, s, n, threshold)
		}
	}
}

// TestConeThresholdBoundary builds a chain of k inverters, whose head net
// has a cone of exactly k gates: threshold k must store it, threshold k-1
// must overflow it.
func TestConeThresholdBoundary(t *testing.T) {
	const k = 9
	n := netlist.New("chain")
	a := n.Input("a")
	cur := a
	for i := 0; i < k; i++ {
		cur = n.Not(cur)
	}
	n.AddFF(cur, "q")
	n.Output(cur, "po")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := scan.Insert(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	pats := []*scan.Pattern{c.NewPattern(3)}

	exact := NewSimCone(c, pats, k)
	if cone, overflow := exact.Cone(a); overflow || len(cone) != k {
		t.Fatalf("threshold %d: cone %v overflow %v, want %d gates stored", k, cone, overflow, k)
	}
	below := NewSimCone(c, pats, k-1)
	if _, overflow := below.Cone(a); !overflow {
		t.Fatalf("threshold %d: cone of %d gates should overflow", k-1, k)
	}
	// Both engines must still simulate identically.
	for _, f := range NewUniverse(n).All {
		if a, b := exact.Run(f, 0), below.Run(f, 0); !reflect.DeepEqual(a, b) {
			t.Fatalf("fault %v: stored-cone %+v vs overflow %+v", f, a, b)
		}
	}
}

// TestOverflowFallbackMatchesFullWalk drives a tiny threshold so nearly
// every net overflows, and demands byte-identical Results against the
// forced full walk and the oracle across random circuits.
func TestOverflowFallbackMatchesFullWalk(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		low, n := randomSimForCone(t, seed, 2)
		full, _ := randomSimForCone(t, seed, 0)
		def, _ := randomSimForCone(t, seed, DefaultConeThreshold)
		for _, f := range NewUniverse(n).All {
			want := full.Run(f, 0)
			if got := low.Run(f, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d fault %v: threshold-2 %+v, full walk %+v", seed, f, got, want)
			}
			if got := def.Run(f, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d fault %v: default %+v, full walk %+v", seed, f, got, want)
			}
		}
	}
}

// TestEpochResetGuard forces the epoch counters to the reset limit and
// checks that simulation results are unaffected — the slab is re-cleared,
// not aliased against stale marks.
func TestEpochResetGuard(t *testing.T) {
	s, n := randomSimForCone(t, 3, DefaultConeThreshold)
	u := NewUniverse(n)
	want := make([]Result, len(u.All))
	for i, f := range u.All {
		want[i] = s.Run(f, 0)
	}
	s.scr.curEp = epochResetLimit + 7
	s.scr.runEp = epochResetLimit + 7
	for i, f := range u.All {
		if got := s.Run(f, 0); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("fault %v after epoch reset: %+v, want %+v", f, got, want[i])
		}
	}
	if s.scr.curEp >= epochResetLimit {
		t.Fatalf("epoch counter %d not rewound by the guard", s.scr.curEp)
	}
	// The reset must re-initialize the whole marker slab, not just rewind
	// the counters — a skipped clear leaves stale marks that alias the
	// small epochs handed out after the rewind.
	s.scr.resetEpochs()
	for i, v := range s.scr.slab {
		if v != -1 {
			t.Fatalf("slab[%d] = %d after resetEpochs, want -1", i, v)
		}
	}
}

// TestExcitationSkipExactness pins the excitation-index word skip against
// the forced full walk on patterns where the index actually discriminates:
// single-lane all-zero and all-one words drive most excitation bits clear,
// so a skip that is wrong in either polarity — on the per-net rows or the
// exact per-pin flip rows — changes Results here. (64-lane random words
// set nearly every excitation bit, which is why this needs its own test.)
func TestExcitationSkipExactness(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		cfg := netlist.RandomConfig{
			Seed:     seed,
			Gates:    1 + int(seed%57),
			FFs:      1 + int((seed>>8)%9),
			Inputs:   1 + int((seed>>16)%5),
			Outputs:  1 + int((seed>>24)%4),
			MaxFanIn: 2 + int((seed>>32)%4),
		}
		n := netlist.Random(cfg)
		c, err := scan.Insert(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		mk := func(fill uint64) *scan.Pattern {
			p := c.NewPattern(1)
			for i := range p.FFVals {
				p.FFVals[i] = fill
			}
			for i := range p.PIVals {
				p.PIVals[i] = fill
			}
			return p
		}
		x := seed ^ 0x9e3779b97f4a7c15
		mixed := c.NewPattern(1)
		for i := range mixed.FFVals {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			mixed.FFVals[i] = x
		}
		for i := range mixed.PIVals {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			mixed.PIVals[i] = x
		}
		pats := []*scan.Pattern{mk(0), mk(^uint64(0)), mixed}
		clipped := NewSimCone(c, pats, DefaultConeThreshold)
		full := NewSimCone(c, pats, 0)
		for _, f := range NewUniverse(n).All {
			if got, want := clipped.Run(f, 0), full.Run(f, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d fault %v: clipped %+v, full walk %+v", seed, f, got, want)
			}
		}
	}
}

// TestConeStatsShape sanity-checks the summary: stored + overflowed nets
// cover the netlist, and the percentiles are ordered.
func TestConeStatsShape(t *testing.T) {
	s, n := randomSimForCone(t, 11, 7)
	st := s.ConeStats()
	if st.Threshold != 7 {
		t.Fatalf("threshold %d, want 7", st.Threshold)
	}
	if st.Nets+st.Overflow != n.NumNets() {
		t.Fatalf("stored %d + overflow %d != nets %d", st.Nets, st.Overflow, n.NumNets())
	}
	if st.P50 > st.P90 || st.P90 > st.P99 || st.P99 > st.MaxGates {
		t.Fatalf("percentiles out of order: %+v", st)
	}
	disabled, _ := randomSimForCone(t, 11, 0)
	if ds := disabled.ConeStats(); ds.Threshold != 0 || ds.Nets != 0 || ds.Overflow != n.NumNets() {
		t.Fatalf("disabled stats %+v", ds)
	}
}

// FuzzConeBuild generates arbitrary valid random netlists and thresholds
// and verifies the stored cones against the brute-force BFS, plus full
// Result equality between the fuzzed-threshold engine and the forced full
// walk on a few faults.
func FuzzConeBuild(f *testing.F) {
	f.Add(uint64(0), byte(10), byte(2), byte(2), byte(2), byte(2), byte(4))
	f.Add(uint64(42), byte(97), byte(11), byte(7), byte(5), byte(4), byte(16))
	f.Add(uint64(7), byte(30), byte(1), byte(1), byte(1), byte(2), byte(0))
	f.Add(uint64(1234567), byte(60), byte(9), byte(3), byte(4), byte(5), byte(2))
	f.Fuzz(func(t *testing.T, seed uint64, gates, ffs, inputs, outputs, fanin, threshold byte) {
		cfg := netlist.RandomConfig{
			Seed:     seed,
			Gates:    1 + int(gates)%97,
			FFs:      1 + int(ffs)%11,
			Inputs:   1 + int(inputs)%7,
			Outputs:  1 + int(outputs)%5,
			MaxFanIn: 2 + int(fanin)%5,
		}
		n := netlist.Random(cfg)
		if err := n.Validate(); err != nil {
			t.Fatalf("generator produced invalid netlist: %v", err)
		}
		c, err := scan.Insert(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := c.NewPattern(64)
		x := seed | 1
		for i := range p.FFVals {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			p.FFVals[i] = x
		}
		for i := range p.PIVals {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			p.PIVals[i] = x
		}
		pats := []*scan.Pattern{p}
		th := int(threshold)
		s := NewSimCone(c, pats, th)
		checkConesAgainstBrute(t, s, n, th)

		full := NewSimCone(c, pats, 0)
		u := NewUniverse(n)
		for i, fl := range u.All {
			if i >= 16 {
				break
			}
			if got, want := s.Run(fl, 0), full.Run(fl, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("fault %v: threshold-%d %+v, full walk %+v", fl, th, got, want)
			}
		}
	})
}
