package fab

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rescue/internal/area"
	"rescue/internal/core"
	"rescue/internal/yield"
)

// ModelsFromPerf averages a node's performance model across its
// benchmarks into the two reference CoreModels the fab engine scores
// with: the baseline (Full only) and the Rescue model with every degraded
// configuration's mean IPC. Benchmarks are folded in sorted-name order so
// the floating-point sums are reproducible.
func ModelsFromPerf(pm *core.PerfModel, baseArea, rescArea area.Model) (base, resc yield.CoreModel) {
	names := make([]string, 0, len(pm.Baseline))
	for name := range pm.Baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	base = yield.CoreModel{Area: baseArea}
	resc = yield.CoreModel{Area: rescArea, IPC: map[yield.CoreConfig]float64{}}
	for _, name := range names {
		base.Full += pm.Baseline[name]
		for cfg, ipc := range pm.Rescue[name] {
			resc.IPC[cfg] += ipc
		}
	}
	n := float64(len(names))
	if n == 0 {
		return base, resc
	}
	base.Full /= n
	for cfg := range resc.IPC {
		resc.IPC[cfg] /= n
	}
	resc.Full = resc.IPC[yield.CoreConfig{}]
	return base, resc
}

// relDelta returns (emp-ana)/ana in percent (0 when ana is 0).
func relDelta(emp, ana float64) float64 {
	if ana == 0 {
		return 0
	}
	return (emp/ana - 1) * 100
}

// WriteText renders the fleet report. With timing off the output is
// bit-stable across worker counts and kill/resume cycles — the golden and
// CI determinism checks diff it directly.
func (r *FleetReport) WriteText(w io.Writer, timing bool) {
	fmt.Fprintf(w, "rescue-fab: %d dies at %dnm (stagnate %dnm, growth %.0f%%), seed %d\n",
		r.Dies, r.NodeNM, r.StagnateNM, r.Growth*100, r.Seed)
	fmt.Fprintf(w, "%d cores/die, rescue core %.2f mm², defect density %.5f/mm² (alpha %.0f)\n",
		r.Cores, r.CoreArea, r.Density, r.Alpha)
	if r.SelfHealShare > 0 {
		fmt.Fprintf(w, "self-healing arrays cover %.0f%% of the chipkill bucket\n", r.SelfHealShare*100)
	}
	fmt.Fprintf(w, "defects: %d sampled (%d structural, %d direct, %d scan, %d chipkill-logic, %d healed), %d unique faults simulated\n",
		r.Defects.total(), r.Defects.Struct, r.Defects.Direct, r.Defects.Scan,
		r.Defects.CKLogic, r.Defects.Healed, r.UniqueFaults)
	c := r.Counts
	fmt.Fprintf(w, "core fates: %d clean, %d degraded, %d chain-fail, %d array-dead, %d chipkill, %d ambiguous, %d dead, %d field-fail\n",
		c.Clean, c.Degraded, c.ChainFail, c.ArrayDead, c.Chipkill, c.Ambiguous, c.Dead, c.FieldFail)
	fmt.Fprintf(w, "shipped %d/%d cores (%d test escapes became field failures)\n",
		c.Shipped(), r.Dies*r.Cores, c.FieldFail)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-19s %-12s %s\n", "", "empirical", "analytic", "delta")
	fmt.Fprintf(w, "%-12s %.4f ± %.4f     %-12.4f %+.2f%%\n",
		"core yield", r.EmpYield, r.EmpYieldCI, r.AnaYield, relDelta(r.EmpYield, r.AnaYield))
	fmt.Fprintf(w, "%-12s %.4f ± %.4f     %-12.4f %+.2f%%\n",
		"chip YAT", r.EmpYAT, r.EmpYATCI, r.AnaChip.Rescue, relDelta(r.EmpYAT, r.AnaChip.Rescue))
	fmt.Fprintf(w, "analytic context: no-redundancy %.4f, core-sparing %.4f, ideal %.4f\n",
		r.AnaChip.NoRedundancy, r.AnaChip.CoreSparing, r.AnaChip.Ideal)
	if timing {
		fmt.Fprintf(w, "campaign: %d faults (%d rehydrated), %d word-sims, %d gate events, %d workers, %s\n",
			r.Stats.Faults, r.Stats.Rehydrated, r.Stats.Words, r.Stats.Events,
			r.Stats.Workers, r.Stats.Wall.Round(time.Millisecond))
	}
}
