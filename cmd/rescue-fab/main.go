// Command rescue-fab closes the defect-tolerance loop empirically: it
// manufactures a Monte Carlo fleet of Rescue dies with clustered random
// defects, scan-tests and diagnoses each one with the real isolation
// machinery, programs the fault map, ships survivors degraded, and
// reports fleet yield and yield-adjusted throughput with confidence
// intervals beside the analytic Figure 9 model.
//
// The run is resilient: SIGINT/SIGTERM finish in-flight campaign chunks,
// flush the -checkpoint journal, and exit 130; -timeout bounds the run by
// a deadline (exit 124); rerunning with -resume rehydrates the journal
// and converges bit-identically at any -workers.
//
// Usage:
//
//	rescue-fab [-dies N] [-node 90|65|32|18] [-stagnate 90|65]
//	           [-growth 0.30] [-seed N] [-workers N] [-small]
//	           [-bench list] [-warmup N] [-commit N]
//	           [-selfheal-share F] [-timing=false] [-timeout D]
//	           [-checkpoint path [-resume]] [-chaos-cancel-after N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rescue/internal/area"
	"rescue/internal/atpg"
	"rescue/internal/cli"
	"rescue/internal/core"
	"rescue/internal/fab"
	"rescue/internal/rtl"
)

func main() {
	dies := flag.Int("dies", 10_000, "dies to manufacture")
	nodeNM := flag.Int("node", 18, "technology node in nm (90, 65, 32, 18)")
	stagnate := flag.Int("stagnate", 90, "node (nm) at which PWP stops improving")
	growth := flag.Float64("growth", 0.30, "core growth rate per technology halving")
	seed := flag.Int64("seed", 2026, "fleet sampling seed")
	workers := flag.Int("workers", 0, "fault-simulation workers (0 = all cores)")
	small := flag.Bool("small", false, "use the reduced configuration (2-way)")
	benches := flag.String("bench", "gzip", "comma-separated benchmarks for the IPC model (empty = all 23)")
	warmup := flag.Int64("warmup", 2_000, "warmup instructions per IPC simulation")
	commit := flag.Int64("commit", 10_000, "measured instructions per IPC simulation")
	healShare := flag.Float64("selfheal-share", 0, "fraction of the chipkill bucket covered by self-healing arrays")
	timing := flag.Bool("timing", true, "print wall-clock timings (disable for golden diffs)")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none); exceeded = exit 124")
	checkpoint := flag.String("checkpoint", "", "campaign checkpoint journal path (enables kill-and-resume)")
	resume := flag.Bool("resume", false, "resume a previous run from the -checkpoint journal")
	chaosAfter := flag.Int64("chaos-cancel-after", 0, "cancel after N campaign fault-sims (chaos testing; 0 = off)")
	flag.Parse()
	cli.CheckWorkers(*workers)
	cli.CheckTimeout(*timeout)
	cli.ArmChaos(*chaosAfter)
	if *dies < 1 {
		cli.Usagef("-dies must be >= 1, got %d", *dies)
	}
	var node area.Scaling
	found := false
	for _, n := range area.Nodes() {
		if n.NodeNM == *nodeNM {
			node, found = n, true
		}
	}
	if !found {
		cli.Usagef("-node must be one of 90, 65, 32, 18, got %d", *nodeNM)
	}
	if *growth < 0 {
		cli.Usagef("-growth must be >= 0, got %v", *growth)
	}
	ck := cli.OpenCheckpoint(*checkpoint, *resume)

	ctx, stop := cli.FlowContext(*timeout)
	defer stop()

	cfg := rtl.Default()
	if *small {
		cfg = rtl.Small()
	}
	start := time.Now()
	s, err := core.Build(cfg, rtl.RescueDesign)
	if err != nil {
		cli.Fatalf("build: %v", err)
	}
	if !s.Audit.OK() {
		cli.Fatalf("ICI audit failed: %d violations", len(s.Audit.Violations))
	}
	fmt.Printf("built %s: %d gates, %d scan cells; ICI audit clean\n",
		s.Design.N.Name, s.Design.N.NumGates(), s.Design.N.NumFFs())

	gen := atpg.DefaultGenConfig()
	gen.Workers = *workers
	tp, err := s.GenerateTestsFlow(ctx, gen, ck)
	if err != nil {
		cli.ExitFlow(err, tp.Gen.Stats, ck)
	}
	fmt.Printf("ATPG: %d vectors, %.2f%% coverage\n", tp.Gen.Vectors, tp.Gen.Coverage*100)

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	pm, err := core.BuildPerfModelFlow(ctx, node, names, *warmup, *commit, *workers)
	if err != nil {
		cli.ExitErr(err)
	}
	rescArea := area.Rescue()
	if *healShare > 0 {
		rescArea = area.RescueSelfHeal(*healShare)
	}
	base, resc := fab.ModelsFromPerf(pm, area.BaselineWithScan(), rescArea)
	if *timing {
		fmt.Printf("degraded-IPC model: %d configurations x %d benchmarks (%s)\n",
			len(resc.IPC), len(pm.Baseline), time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("degraded-IPC model: %d configurations x %d benchmarks\n",
			len(resc.IPC), len(pm.Baseline))
	}

	eng, err := fab.New(s, tp, base, resc, fab.Config{
		Dies: *dies, Node: node, Stagnate: area.Node(*stagnate),
		Growth: *growth, Seed: *seed, Workers: *workers,
		SelfHealShare: *healShare,
	})
	if err != nil {
		cli.Fatalf("%v", err)
	}
	rep, err := eng.Run(ctx, ck)
	if err != nil {
		cli.ExitFlow(err, rep.Stats, ck)
	}
	fmt.Println()
	rep.WriteText(os.Stdout, *timing)
}
