// Command rescue-dict builds a complete fault dictionary for the Rescue
// design — every collapsed fault's syndrome (set of failing scan bits)
// under the generated test program — and optionally diagnoses an observed
// syndrome against it: the candidate faults and the super-component they
// implicate. This is the test-floor artifact real diagnosis flows use in
// place of per-part re-simulation.
//
// Usage:
//
//	rescue-dict build [-small] [-workers N] [-timeout D] [-progress]
//	                  [-checkpoint path [-resume]]
//	                  [-chaos-cancel-after N] -o dict.csv
//	rescue-dict diagnose [-small] -d dict.csv -bits 12,57,103
//
// Dictionary construction fan-outs across -workers cores (0 = all); the
// dictionary is bit-identical at any worker count. The build is resilient:
// SIGINT/SIGTERM finish in-flight chunks, flush the -checkpoint journal
// (if one was given), print the partial campaign stats, and exit 130;
// rerunning with -resume rehydrates the journaled work and converges
// bit-identically to an uninterrupted build. A -timeout deadline exits 124
// the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rescue/internal/cli"
	"rescue/internal/fault"
	"rescue/internal/flows"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "diagnose":
		diagnose(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rescue-dict build|diagnose [flags]")
	os.Exit(cli.ExitUsage)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	small := fs.Bool("small", false, "use the reduced (2-way) configuration")
	out := fs.String("o", "", "output CSV (required)")
	ff := cli.AddFlowFlags(fs)
	fs.Parse(args)
	ff.Validate()
	if *out == "" {
		cli.Usagef("build: -o required")
	}
	ck := ff.OpenCheckpoint()

	ctx, stop := ff.Context()
	defer stop()

	// The output file is created on first write, so an interrupted build
	// leaves nothing behind (the flow only writes CSV after the campaign
	// finishes).
	lf := &lazyFile{path: *out}
	defer lf.Close()
	res, err := flows.DictBuild(ctx, os.Stdout, lf, flows.DictOpts{
		Small:   *small,
		Workers: ff.Workers,
	}, flows.Env{Ck: ck})
	if err != nil {
		cli.ExitFlow(err, res.Stats, ck)
	}
	if err := lf.Close(); err != nil {
		cli.Fatalf("%v", err)
	}
	fmt.Printf("%d/%d faults detected; dictionary written to %s\n",
		res.Detected, res.Faults, *out)
}

// lazyFile defers os.Create until the first write.
type lazyFile struct {
	path string
	f    *os.File
}

func (l *lazyFile) Write(p []byte) (int, error) {
	if l.f == nil {
		f, err := os.Create(l.path)
		if err != nil {
			return 0, err
		}
		l.f = f
	}
	return l.f.Write(p)
}

func (l *lazyFile) Close() error {
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}

func diagnose(args []string) {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	small := fs.Bool("small", false, "use the reduced (2-way) configuration")
	dict := fs.String("d", "", "dictionary CSV from `rescue-dict build` (required)")
	bits := fs.String("bits", "", "comma-separated failing observation indices (required)")
	fs.Parse(args)
	if *dict == "" || *bits == "" {
		cli.Usagef("diagnose: -d and -bits required")
	}
	f, err := os.Open(*dict)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	defer f.Close()
	d, err := fault.ReadCSV(f)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	var obs []int
	for _, p := range strings.Split(*bits, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			cli.Usagef("diagnose: bad -bits entry %q: %v", p, err)
		}
		obs = append(obs, v)
	}
	sys, tp, err := flows.DictSystem(context.Background(), *small, 0, flows.Env{})
	if err != nil {
		if tp != nil {
			cli.ExitFlow(err, tp.Gen.Stats, nil)
		}
		cli.Fatalf("%v", err)
	}
	if len(d.Syndromes) != tp.Universe.CountCollapsed() {
		cli.Fatalf("dictionary has %d rows but the design has %d faults (wrong -small?)",
			len(d.Syndromes), tp.Universe.CountCollapsed())
	}
	cands := d.Lookup(obs)
	fmt.Printf("%d candidate faults for syndrome %v\n", len(cands), obs)
	supers := map[string]int{}
	n := sys.Design.N
	for _, c := range cands {
		fsite := tp.Universe.Collapsed[c]
		comp := n.CompName(n.FaultSiteComp(fsite))
		supers[sys.Design.Grouping[comp]]++
	}
	for s, k := range supers {
		fmt.Printf("  super-component %-10s %d candidates\n", s, k)
	}
	if super, err := sys.Audit.Isolate(obs); err == nil {
		fmt.Printf("single-lookup isolation: %s\n", super)
	} else {
		fmt.Printf("single-lookup isolation: %v\n", err)
	}
}
