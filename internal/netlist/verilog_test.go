package netlist

import (
	"strings"
	"testing"
)

func buildVerilogSample() *Netlist {
	n := New("sample-1")
	a := n.Input("a")
	b := n.Input("b[0]") // name needing sanitization
	n.Component("X")
	x := n.And(a, b)
	m := n.Mux(a, x, b)
	n.Component("Y")
	q := n.AddFF(m, "q.reg")
	o := n.Or(q, x) // reads component X's output intra-cycle
	c0 := n.Const(false)
	o2 := n.Xor(o, c0)
	n.Output(o2, "out")
	return n
}

func TestWriteVerilog(t *testing.T) {
	n := buildVerilogSample()
	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module sample_1",
		"input wire clk",
		"input wire a",
		"input wire b_0_",
		"output wire o_out",
		"and g0",
		"? ", // mux ternary
		"always @(posedge clk)",
		"q_reg <=",
		"// component: X",
		"// component: Y",
		"assign", // const tie + output assigns
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q\n%s", want, v)
		}
	}
	// identifiers must never contain illegal characters (comments may keep
	// the original names for traceability, so check code positions)
	for _, bad := range []string{"b[0]", "q.reg <=", "module sample-1"} {
		if strings.Contains(v, bad) {
			t.Errorf("unsanitized identifier %q leaked", bad)
		}
	}
}

func TestWriteVerilogBalancedModule(t *testing.T) {
	n := buildVerilogSample()
	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if strings.Count(v, "module ") != 1 || strings.Count(v, "endmodule") != 1 {
		t.Fatal("exactly one module expected")
	}
	// every gate instantiated or assigned exactly once
	gateLines := strings.Count(v, " g0 ") + strings.Count(v, "// g")
	if gateLines < n.NumGates()-2 { // muxes/consts use assign-with-comment
		t.Logf("gate lines %d of %d (muxes and ties use assigns)", gateLines, n.NumGates())
	}
}

func TestWriteDot(t *testing.T) {
	n := buildVerilogSample()
	var sb strings.Builder
	if err := n.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	d := sb.String()
	for _, want := range []string{"digraph", "\"X\"", "\"Y\"", "->", "}"} {
		if !strings.Contains(d, want) {
			t.Errorf("dot missing %q\n%s", want, d)
		}
	}
	// Y reads the FF (inter-cycle, dashed) and... X feeds the FF's D;
	// the FF belongs to Y, so the D cone crossing X->Y is NOT emitted as a
	// gate-to-gate edge; the latch crossing back is dashed.
	if !strings.Contains(d, "style=dashed") {
		t.Error("expected a dashed latch-crossing edge")
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"abc":      "abc",
		"a.b[3]":   "a_b_3_",
		"3x":       "_3x",
		"":         "_",
		"fe0.rt":   "fe0_rt",
		"commit-x": "commit_x",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
