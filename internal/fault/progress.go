package fault

import "context"

// ProgressFunc observes campaign progress: it is called once per completed
// chunk with the cumulative number of finished faults (rehydrated results
// included) and the run's total fault count. Calls come from campaign
// worker goroutines, possibly concurrently — implementations must be
// cheap and goroutine-safe. done == total marks the run complete.
type ProgressFunc func(done, total int64)

type progressKey struct{}

// WithProgress attaches a progress hook to ctx. Every campaign run under
// this context reports into the hook, which is how long multi-campaign
// flows (ATPG generation, dictionary builds, isolation sweeps, fab fleets)
// expose live percent-complete without widening any flow signature: the
// CLIs attach a stderr printer, the serving daemon attaches the job's
// event publisher. A nil fn returns ctx unchanged.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, fn)
}

// ProgressFromContext returns the hook attached by WithProgress, or nil.
// Non-campaign flows (the uarch IPC studies) use it to report their own
// job-granular progress through the same channel.
func ProgressFromContext(ctx context.Context) ProgressFunc {
	fn, _ := ctx.Value(progressKey{}).(ProgressFunc)
	return fn
}

// combineProgress merges the config-level and context-level hooks. The
// result is nil when both are unset, so the campaign hot loop keeps its
// zero-overhead nil guard.
func combineProgress(a, b ProgressFunc) ProgressFunc {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return func(done, total int64) {
			a(done, total)
			b(done, total)
		}
	}
}
