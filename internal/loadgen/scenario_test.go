package loadgen

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTenantTagDigestPreserved is the multi-tenancy acceptance pin: an
// untagged schedule serializes without any tenant keys at all — so its
// digest is exactly what it was before tenancy existed — while the same
// Config with a Tenant differs only by the tag, not by arrivals or
// bodies.
func TestTenantTagDigestPreserved(t *testing.T) {
	plain, err := Build(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(plain.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"tenant"`) || strings.Contains(string(b), `"class"`) {
		t.Fatal("untagged requests serialized tenant/class keys; digests would shift")
	}
	if b, err = json.Marshal(plain.Clients); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"tenant"`) {
		t.Fatal("untagged clients serialized a tenant key; digests would shift")
	}

	cfg := testConfig(42)
	cfg.Tenant = "team-a"
	cfg.Class = "interactive"
	tagged, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tagged.Digest() == plain.Digest() {
		t.Fatal("tagging is part of workload identity; digests must differ")
	}
	if len(tagged.Requests) != len(plain.Requests) {
		t.Fatalf("tagging changed request count: %d vs %d", len(tagged.Requests), len(plain.Requests))
	}
	for i := range tagged.Requests {
		rt, rp := tagged.Requests[i], plain.Requests[i]
		if rt.Tenant != "team-a" || rt.Class != "interactive" {
			t.Fatalf("request %d not tagged: %+v", i, rt)
		}
		if rt.At != rp.At || rt.Kind != rp.Kind || rt.Warm != rp.Warm || !bytes.Equal(rt.Body, rp.Body) {
			t.Fatalf("tagging perturbed request %d beyond the tag: %+v vs %+v", i, rt, rp)
		}
	}
}

// TestMerge checks the multi-population combiner: client IDs reindexed
// with requests following, seqs reassigned over the merged arrival
// order, canonicals unioned, and seeds concatenated in client order.
func TestMerge(t *testing.T) {
	ca := testConfig(1)
	ca.Clients = 3
	ca.Tenant = "a"
	cb := testConfig(2)
	cb.Clients = 2
	cb.Tenant = "b"
	a, err := Build(ca)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cb)
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(a, b)

	if got, want := len(m.Clients), len(a.Clients)+len(b.Clients); got != want {
		t.Fatalf("merged clients = %d, want %d", got, want)
	}
	if got, want := len(m.Requests), len(a.Requests)+len(b.Requests); got != want {
		t.Fatalf("merged requests = %d, want %d", got, want)
	}
	if got, want := len(m.Seeds), len(a.Seeds)+len(b.Seeds); got != want {
		t.Fatalf("merged seeds = %d, want %d", got, want)
	}
	for i, c := range m.Clients {
		if c.ID != i {
			t.Fatalf("client %d has ID %d; want dense reindex", i, c.ID)
		}
		want := "a"
		if i >= len(a.Clients) {
			want = "b"
		}
		if c.Tenant != want {
			t.Fatalf("client %d tenant = %q, want %q", i, c.Tenant, want)
		}
	}
	// Seeds follow their clients across the reindex, so jitter derivation
	// is stable for the second schedule's population too.
	for i, s := range b.Seeds {
		if m.Seeds[len(a.Seeds)+i] != s {
			t.Fatalf("seed for reindexed client %d lost", len(a.Seeds)+i)
		}
	}
	last := time.Duration(-1)
	for i, r := range m.Requests {
		if r.Seq != i+1 {
			t.Fatalf("request %d has seq %d; want dense renumbering", i, r.Seq)
		}
		if r.At < last {
			t.Fatalf("merged requests not time-ordered at %d", i)
		}
		last = r.At
		if r.Client < 0 || r.Client >= len(m.Clients) {
			t.Fatalf("request %d references client %d outside merged population", i, r.Client)
		}
		if m.Clients[r.Client].Tenant != r.Tenant {
			t.Fatalf("request %d tenant %q does not match its client's %q",
				i, r.Tenant, m.Clients[r.Client].Tenant)
		}
	}
	for kind := range a.Canonical {
		if _, ok := m.Canonical[kind]; !ok {
			t.Fatalf("canonical %s lost in merge", kind)
		}
	}
}

// TestBuildNoisyNeighbor pins the scenario's core guarantee: the victim
// population is identical between the solo baseline and the contended
// schedule — same arrivals, same bodies — so the p99 comparison is
// apples to apples.
func TestBuildNoisyNeighbor(t *testing.T) {
	solo, combined, err := BuildNoisyNeighbor(NoisyNeighborConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Requests) == 0 {
		t.Fatal("empty victim schedule")
	}
	for _, r := range solo.Requests {
		if r.Tenant != "victim" {
			t.Fatalf("solo request tagged %q, want victim", r.Tenant)
		}
		if !r.Warm {
			t.Fatal("victim traffic must be warm-only")
		}
	}
	var victims, aggressors []Request
	for _, r := range combined.Requests {
		switch r.Tenant {
		case "victim":
			victims = append(victims, r)
		case "aggressor":
			aggressors = append(aggressors, r)
		default:
			t.Fatalf("unexpected tenant %q in combined schedule", r.Tenant)
		}
	}
	if len(victims) != len(solo.Requests) {
		t.Fatalf("victim request count drifted: solo %d, combined %d",
			len(solo.Requests), len(victims))
	}
	for i := range victims {
		v, s := victims[i], solo.Requests[i]
		if v.At != s.At || v.Kind != s.Kind || !bytes.Equal(v.Body, s.Body) {
			t.Fatalf("victim request %d differs between legs: %+v vs %+v", i, v, s)
		}
	}
	if len(aggressors) == 0 {
		t.Fatal("no aggressor traffic")
	}
	// The aggressor floods: many times the victim's volume, all cold.
	if len(aggressors) < 5*len(victims) {
		t.Fatalf("aggressor volume %d not flooding next to victim %d",
			len(aggressors), len(victims))
	}
	for _, r := range aggressors {
		if r.Warm {
			t.Fatal("aggressor traffic must be cold (fresh campaign builds)")
		}
	}
}
