package netlist

import "fmt"

// State holds one 64-way-parallel simulation image of a netlist: one uint64
// word per net, bit i of each word belonging to pattern i. Pattern-parallel
// words are the workhorse of the fault simulator — a single pass evaluates
// 64 scan-test patterns at once.
type State struct {
	n    *Netlist
	Vals []uint64
}

// NewState allocates a zeroed simulation state for n.
func (n *Netlist) NewState() *State {
	if err := n.levelize(); err != nil {
		panic(err)
	}
	return &State{n: n, Vals: make([]uint64, len(n.nets))}
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, Vals: make([]uint64, len(s.Vals))}
	copy(c.Vals, s.Vals)
	return c
}

// Set assigns a net's 64-pattern word.
func (s *State) Set(id NetID, v uint64) { s.Vals[id] = v }

// Get reads a net's 64-pattern word.
func (s *State) Get(id NetID) uint64 { return s.Vals[id] }

// SetBool assigns all 64 pattern lanes of a net to the same boolean.
func (s *State) SetBool(id NetID, v bool) {
	if v {
		s.Vals[id] = ^uint64(0)
	} else {
		s.Vals[id] = 0
	}
}

// Bool reads lane 0 of a net as a boolean.
func (s *State) Bool(id NetID) bool { return s.Vals[id]&1 != 0 }

// Fault names a single stuck-at fault site: a specific gate pin (input pin
// index, or output when Pin == -1), or a flip-flop Q output when Gate == -1
// (FF field used instead). StuckAt1 selects stuck-at-1 vs stuck-at-0.
type Fault struct {
	Gate     GateID // -1 when the site is an FF output
	FF       FFID   // valid when Gate == -1
	Pin      int    // input pin index; -1 = gate output
	StuckAt1 bool
}

// NoFault is the zero-cost "no fault injected" sentinel.
var NoFault = Fault{Gate: -1, FF: -1, Pin: -1}

// IsValid reports whether f names a real fault site.
func (f Fault) IsValid() bool { return f.Gate >= 0 || f.FF >= 0 }

func (f Fault) String() string {
	sa := 0
	if f.StuckAt1 {
		sa = 1
	}
	if f.Gate < 0 {
		return fmt.Sprintf("FF%d/Q sa%d", f.FF, sa)
	}
	if f.Pin < 0 {
		return fmt.Sprintf("G%d/out sa%d", f.Gate, sa)
	}
	return fmt.Sprintf("G%d/in%d sa%d", f.Gate, f.Pin, sa)
}

func evalGate(k GateKind, ins []uint64) uint64 {
	switch k {
	case And:
		v := ^uint64(0)
		for _, x := range ins {
			v &= x
		}
		return v
	case Or:
		v := uint64(0)
		for _, x := range ins {
			v |= x
		}
		return v
	case Nand:
		v := ^uint64(0)
		for _, x := range ins {
			v &= x
		}
		return ^v
	case Nor:
		v := uint64(0)
		for _, x := range ins {
			v |= x
		}
		return ^v
	case Xor:
		v := uint64(0)
		for _, x := range ins {
			v ^= x
		}
		return v
	case Xnor:
		v := uint64(0)
		for _, x := range ins {
			v ^= x
		}
		return ^v
	case Not:
		return ^ins[0]
	case Buf:
		return ins[0]
	case Mux2:
		sel, a, b := ins[0], ins[1], ins[2]
		return (a &^ sel) | (b & sel)
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	}
	panic("netlist: unknown gate kind")
}

// evalOne evaluates a single gate into s, honoring an injected fault.
func (s *State) evalOne(gi GateID, f Fault) {
	g := &s.n.Gates[gi]
	var buf [8]uint64
	ins := buf[:0]
	for _, in := range g.In {
		ins = append(ins, s.Vals[in])
	}
	if f.Gate == gi && f.Pin >= 0 {
		if f.StuckAt1 {
			ins[f.Pin] = ^uint64(0)
		} else {
			ins[f.Pin] = 0
		}
	}
	v := evalGate(g.Kind, ins)
	if f.Gate == gi && f.Pin < 0 {
		if f.StuckAt1 {
			v = ^uint64(0)
		} else {
			v = 0
		}
	}
	s.Vals[g.Out] = v
}

// EvalComb evaluates all combinational logic from the current net values
// (primary inputs and FF Q nets must be set by the caller) with fault f
// injected. Pass NoFault for good-machine simulation.
func (s *State) EvalComb(f Fault) {
	if f.Gate < 0 && f.FF >= 0 {
		q := s.n.FFs[f.FF].Q
		if f.StuckAt1 {
			s.Vals[q] = ^uint64(0)
		} else {
			s.Vals[q] = 0
		}
	}
	for _, gi := range s.n.order {
		s.evalOne(gi, f)
	}
}

// CaptureFFs performs the clock edge: every FF's Q net takes its D net's
// value. If f is an FF-output fault, the faulty Q is forced afterwards.
func (s *State) CaptureFFs(f Fault) {
	// two-phase copy so FF->FF chains are edge-accurate
	tmp := make([]uint64, len(s.n.FFs))
	for i := range s.n.FFs {
		tmp[i] = s.Vals[s.n.FFs[i].D]
	}
	for i := range s.n.FFs {
		s.Vals[s.n.FFs[i].Q] = tmp[i]
	}
	if f.Gate < 0 && f.FF >= 0 {
		q := s.n.FFs[f.FF].Q
		if f.StuckAt1 {
			s.Vals[q] = ^uint64(0)
		} else {
			s.Vals[q] = 0
		}
	}
}

// Cycle runs one full clock cycle: combinational settle then FF capture.
func (s *State) Cycle(f Fault) {
	s.EvalComb(f)
	s.CaptureFFs(f)
}

// FaultSiteComp returns the ICI component a fault site belongs to.
func (n *Netlist) FaultSiteComp(f Fault) CompID {
	if f.Gate >= 0 {
		return n.Gates[f.Gate].Comp
	}
	if f.FF >= 0 {
		return n.FFs[f.FF].Comp
	}
	return 0
}

// AllFaultSites enumerates the uncollapsed single-stuck-at fault universe:
// sa0 and sa1 at every gate output, every gate input pin, and every FF
// output (the FF output faults model defects in the sequential element
// itself, visible as a wrong captured value).
func (n *Netlist) AllFaultSites() []Fault {
	var out []Fault
	for gi := range n.Gates {
		out = append(out,
			Fault{Gate: GateID(gi), FF: -1, Pin: -1, StuckAt1: false},
			Fault{Gate: GateID(gi), FF: -1, Pin: -1, StuckAt1: true})
		for pi := range n.Gates[gi].In {
			out = append(out,
				Fault{Gate: GateID(gi), FF: -1, Pin: pi, StuckAt1: false},
				Fault{Gate: GateID(gi), FF: -1, Pin: pi, StuckAt1: true})
		}
	}
	for fi := range n.FFs {
		out = append(out,
			Fault{Gate: -1, FF: FFID(fi), Pin: -1, StuckAt1: false},
			Fault{Gate: -1, FF: FFID(fi), Pin: -1, StuckAt1: true})
	}
	return out
}
