#!/usr/bin/env bash
# Per-package statement-coverage floors for the packages the differential
# verification subsystem is supposed to keep honest. Floors are set a few
# points under the current numbers (fault 93.3%, netlist 84.5% when this
# was written) so they catch real regressions, not noise.
#
# Usage: scripts/check-coverage.sh
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A floor=(
  [./internal/fault]=90.0
  [./internal/netlist]=80.0
)

fail=0
for pkg in "${!floor[@]}"; do
    line=$(go test -cover "$pkg" | tail -1)
    echo "$line"
    pct=$(echo "$line" | grep -o '[0-9.]*% of statements' | grep -o '^[0-9.]*')
    if [ -z "$pct" ]; then
        echo "FAIL: could not parse coverage for $pkg" >&2
        fail=1
        continue
    fi
    if awk -v p="$pct" -v f="${floor[$pkg]}" 'BEGIN { exit !(p < f) }'; then
        echo "FAIL: $pkg coverage $pct% is below the ${floor[$pkg]}% floor" >&2
        fail=1
    fi
done
exit "$fail"
