package rtl

import (
	"strings"
	"testing"

	"rescue/internal/ici"
)

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Small().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.Ways = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("odd Ways must fail")
	}
	bad = Default()
	bad.IQEntries = 15
	if err := bad.Validate(); err == nil {
		t.Fatal("odd IQEntries must fail")
	}
	bad = Default()
	bad.TempSlots = 100
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized TempSlots must fail")
	}
}

func TestBuildBothVariants(t *testing.T) {
	for _, cfg := range []Config{Small(), Default()} {
		for _, v := range []Variant{Baseline, RescueDesign} {
			d, err := Build(cfg, v)
			if err != nil {
				t.Fatalf("%v/%+v: %v", v, cfg, err)
			}
			st := d.N.Stats()
			if st.Gates < 500 {
				t.Errorf("%v: suspiciously small netlist: %d gates", v, st.Gates)
			}
			if st.FFs < 100 {
				t.Errorf("%v: too few FFs: %d", v, st.FFs)
			}
			t.Logf("%v %dway: %d gates, %d FFs, %d nets, %d comps",
				v, cfg.Ways, st.Gates, st.FFs, st.Nets, d.N.NumComps())
		}
	}
}

func TestRescueAuditClean(t *testing.T) {
	d, err := Build(Small(), RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	res := ici.Audit(d.N, d.Grouping)
	if !res.OK() {
		for _, v := range res.Violations[:min(10, len(res.Violations))] {
			t.Errorf("obs %d spans %v", v.Obs, v.Supers)
		}
		t.Fatalf("rescue design has %d ICI violations", len(res.Violations))
	}
}

func TestBaselineAuditViolates(t *testing.T) {
	d, err := Build(Small(), Baseline)
	if err != nil {
		t.Fatal(err)
	}
	res := ici.Audit(d.N, d.Grouping)
	if res.OK() {
		t.Fatal("baseline design unexpectedly satisfies ICI at map-out granularity")
	}
	// the violations must include the issue queue (compaction/select
	// crossing halves) and rename (shared map table)
	sawIQ, sawRename := false, false
	for _, v := range res.Violations {
		for _, s := range v.Supers {
			if strings.HasPrefix(s, "IQ") || strings.HasPrefix(s, "iq.") {
				sawIQ = true
			}
			if strings.HasPrefix(s, "fe.rt") || strings.HasPrefix(s, "fe.fix") || strings.HasPrefix(s, "fe.free") {
				sawRename = true
			}
		}
	}
	if !sawIQ {
		t.Error("expected issue-queue ICI violations in baseline")
	}
	if !sawRename {
		t.Error("expected rename ICI violations in baseline")
	}
}

func TestRescueSuperComponents(t *testing.T) {
	d, err := Build(Small(), RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	supers := map[string]bool{}
	for _, s := range d.SuperComponents() {
		supers[s] = true
	}
	for _, want := range []string{"FE0", "IQ0", "IQ1", "LSQ0", "LSQ1", "BE0", "CHIPKILL"} {
		if !supers[want] {
			t.Errorf("missing super-component %s (have %v)", want, d.SuperComponents())
		}
	}
}

func TestStageOfCompCoversAllComponents(t *testing.T) {
	d, err := Build(Small(), RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range d.N.ComponentsUsed() {
		if comp == "<anon>" {
			t.Errorf("gates left in the anonymous component")
			continue
		}
		if _, ok := d.StageOfComp[comp]; !ok {
			t.Errorf("component %s has no stage mapping", comp)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
