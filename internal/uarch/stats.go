package uarch

import (
	"fmt"
	"strings"
)

// Occupancy accumulates structure-utilization statistics: average and peak
// occupancy of the windows whose sizes the Rescue transformations and
// map-outs change. These are the quantities that explain WHERE the 4%
// fault-free degradation and the degraded-mode losses come from.
type Occupancy struct {
	Cycles               int64
	IntIQSum, FPIQSum    int64
	LSQSum, ROBSum       int64
	IntIQPeak, FPIQPeak  int
	LSQPeak, ROBPeak     int
	IssueSlotsUsed       int64 // instructions issued
	IssueCyclesSaturated int64 // cycles issuing a full width
	DispatchStallIQ      int64 // dispatch blocked on queue space
	DispatchStallROB     int64
	DispatchStallLSQ     int64
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sample records one cycle's occupancy.
func (o *Occupancy) sample(intIQ, fpIQ, lsq, rob int) {
	o.Cycles++
	o.IntIQSum += int64(intIQ)
	o.FPIQSum += int64(fpIQ)
	o.LSQSum += int64(lsq)
	o.ROBSum += int64(rob)
	o.IntIQPeak = maxi(o.IntIQPeak, intIQ)
	o.FPIQPeak = maxi(o.FPIQPeak, fpIQ)
	o.LSQPeak = maxi(o.LSQPeak, lsq)
	o.ROBPeak = maxi(o.ROBPeak, rob)
}

// Avg returns the average occupancies (intIQ, fpIQ, lsq, rob).
func (o *Occupancy) Avg() (float64, float64, float64, float64) {
	if o.Cycles == 0 {
		return 0, 0, 0, 0
	}
	c := float64(o.Cycles)
	return float64(o.IntIQSum) / c, float64(o.FPIQSum) / c,
		float64(o.LSQSum) / c, float64(o.ROBSum) / c
}

// Occupancy returns the simulator's accumulated utilization statistics.
func (s *Sim) Occupancy() Occupancy { return s.occ }

// Report formats the run's statistics for humans.
func (s *Sim) Report() string {
	var b strings.Builder
	st := s.stats
	fmt.Fprintf(&b, "cycles %d  committed %d  IPC %.3f\n", st.Cycles, st.Committed, st.IPC())
	if st.BranchCount > 0 {
		fmt.Fprintf(&b, "branches %d  mispredicts %d (%.1f%%)  BTB redirects %d\n",
			st.BranchCount, st.Mispredicts,
			100*float64(st.Mispredicts)/float64(st.BranchCount), st.BTBRedirects)
	}
	fmt.Fprintf(&b, "L1D misses %d  shadow squashes %d\n", st.L1DMisses, st.MissSquashes)
	if s.P.Rescue {
		fmt.Fprintf(&b, "over-selection replays %d events / %d instructions\n",
			st.ReplayEvents, st.Replays)
	}
	i, f, l, r := s.occ.Avg()
	fmt.Fprintf(&b, "avg occupancy: intIQ %.1f/%d  fpIQ %.1f/%d  LSQ %.1f/%d  ROB %.1f/%d\n",
		i, s.P.IntIQSize, f, s.P.FPIQSize, l, s.P.LSQSize, r, s.P.ROBSize)
	fmt.Fprintf(&b, "peaks: intIQ %d  fpIQ %d  LSQ %d  ROB %d\n",
		s.occ.IntIQPeak, s.occ.FPIQPeak, s.occ.LSQPeak, s.occ.ROBPeak)
	fmt.Fprintf(&b, "dispatch stalls: IQ %d  ROB %d  LSQ %d\n",
		s.occ.DispatchStallIQ, s.occ.DispatchStallROB, s.occ.DispatchStallLSQ)
	return b.String()
}
