package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options parameterize a firing run.
type Options struct {
	// BaseURL is the daemon root, e.g. http://127.0.0.1:8321.
	BaseURL string
	// Prewarm submits each profile's canonical spec once and waits for it
	// before the clock starts, so the warm share of the schedule measures
	// cache serving rather than first-build cost.
	Prewarm bool
	// MaxRetries bounds 429 resubmissions per request. 0 = 8.
	MaxRetries int
	// RetryCap clamps how long a Retry-After is honored, keeping short
	// benchmark runs from stalling on a 60s estimate. 0 = 5s.
	RetryCap time.Duration
	// SampleEvery is the /metrics sampling period for queue depth and
	// slot occupancy. 0 = 250ms.
	SampleEvery time.Duration
	// RequestTimeout bounds one request's full lifecycle. 0 = 5m.
	RequestTimeout time.Duration
	// SlowReaders marks the first N requests (by seq) as slow event-stream
	// consumers: instead of holding the stream open, they poll the job
	// snapshot every SlowReadDelay and replay the event log only after the
	// job finishes — the consumer that fell behind and came back. Chatty
	// jobs overflow a small -event-log-cap in the meantime, so the replay
	// opens with a {"type":"dropped"} marker, which the run counts.
	SlowReaders int
	// SlowReadDelay is the slow readers' poll interval. 0 = 50ms.
	SlowReadDelay time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() error {
	if o.BaseURL == "" {
		return fmt.Errorf("loadgen: need a base URL")
	}
	o.BaseURL = strings.TrimSuffix(o.BaseURL, "/")
	if o.MaxRetries == 0 {
		o.MaxRetries = 8
	}
	if o.RetryCap == 0 {
		o.RetryCap = 5 * time.Second
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 250 * time.Millisecond
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 5 * time.Minute
	}
	if o.SlowReaders < 0 {
		return fmt.Errorf("loadgen: slow readers must be >= 0, got %d", o.SlowReaders)
	}
	if o.SlowReadDelay == 0 {
		o.SlowReadDelay = 50 * time.Millisecond
	}
	return nil
}

// RequestResult records one request's observed lifecycle.
type RequestResult struct {
	Seq    int    `json:"seq"`
	Client int    `json:"client"`
	Kind   string `json:"kind"`
	Warm   bool   `json:"warm"`
	// SubmitMS is scheduled-fire to 202, including any 429 backoff.
	SubmitMS float64 `json:"submitMS"`
	// TotalMS is scheduled-fire to the job's terminal state.
	TotalMS float64 `json:"totalMS"`
	// Retries counts 429-backoff resubmissions.
	Retries int `json:"retries"`
	// Tenant is the identity the request fired under ("" = untagged).
	Tenant string `json:"tenant,omitempty"`
	// Dropped counts events the server's bounded buffers evicted from this
	// request's stream (the sum of dropped-marker counts it observed).
	Dropped int `json:"dropped,omitempty"`
	// State is the job's terminal state, or "rejected" when retries ran
	// out, or "error" on a transport/protocol failure (Err has detail).
	State string `json:"state"`
	Err   string `json:"err,omitempty"`
}

// OK reports whether the request completed as a client would want.
func (r RequestResult) OK() bool { return r.State == "succeeded" }

// RunStats is everything a firing run observed.
type RunStats struct {
	Results []RequestResult
	// Wall is schedule start to last completion.
	Wall time.Duration
	// Queue/slot occupancy sampled from /metrics during the run.
	QueueDepthMax  int64
	QueueDepthMean float64
	SlotsBusyMean  float64
	Slots          int64
	Samples        int
	// Artifact-cache traffic over the run (deltas; prewarm excluded).
	CacheHits, CacheMisses int64
	// PrewarmMS is how long priming the canonical specs took.
	PrewarmMS float64
	// DropMarkers counts request streams that observed at least one
	// dropped marker; DroppedEvents sums the evicted-event counts.
	DropMarkers   int
	DroppedEvents int
}

// Run replays a schedule against a live daemon and records what happened.
// The generator is open-loop: requests fire at their scheduled offsets
// whether or not earlier ones completed — that is what pushes the queue.
func Run(ctx context.Context, sch *Schedule, opts Options) (*RunStats, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	client := &http.Client{}
	st := &RunStats{Results: make([]RequestResult, len(sch.Requests))}

	if opts.Prewarm {
		t0 := time.Now()
		for _, kind := range canonicalKinds(sch) {
			req := Request{Kind: kind, Body: sch.Canonical[kind], Warm: true}
			rr := fire(ctx, client, opts, req, sch.jitterSeed(req))
			if !rr.OK() {
				return nil, fmt.Errorf("loadgen: prewarm %s: state %s %s", kind, rr.State, rr.Err)
			}
		}
		st.PrewarmMS = float64(time.Since(t0)) / float64(time.Millisecond)
		logf(opts, "prewarmed %d canonical specs in %.0fms", len(sch.Canonical), st.PrewarmMS)
	}

	hits0, misses0, err := scrapeCache(ctx, client, opts.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: baseline /metrics scrape: %w", err)
	}

	// Gauge sampler: queue depth and busy slots over the run.
	samplerCtx, stopSampler := context.WithCancel(ctx)
	defer stopSampler()
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(opts.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-samplerCtx.Done():
				return
			case <-tick.C:
				g, err := scrapeGauges(samplerCtx, client, opts.BaseURL)
				if err != nil {
					continue
				}
				if g.queueDepth > st.QueueDepthMax {
					st.QueueDepthMax = g.queueDepth
				}
				st.QueueDepthMean += float64(g.queueDepth)
				st.SlotsBusyMean += float64(g.running)
				st.Slots = g.slots
				st.Samples++
			}
		}
	}()

	// Open-loop firing.
	start := time.Now()
	var wg sync.WaitGroup
	for i := range sch.Requests {
		req := sch.Requests[i]
		if d := time.Until(start.Add(req.At)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			st.Results[i] = fire(ctx, client, opts, req, sch.jitterSeed(req))
		}(i, req)
	}
	wg.Wait()
	st.Wall = time.Since(start)
	for _, rr := range st.Results {
		if rr.Dropped > 0 {
			st.DropMarkers++
			st.DroppedEvents += rr.Dropped
		}
	}
	stopSampler()
	<-samplerDone
	if st.Samples > 0 {
		st.QueueDepthMean /= float64(st.Samples)
		st.SlotsBusyMean /= float64(st.Samples)
	}

	hits1, misses1, err := scrapeCache(ctx, client, opts.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final /metrics scrape: %w", err)
	}
	st.CacheHits = hits1 - hits0
	st.CacheMisses = misses1 - misses0
	logf(opts, "fired %d requests in %s (cache +%d hits / +%d misses)",
		len(sch.Requests), st.Wall.Round(time.Millisecond), st.CacheHits, st.CacheMisses)
	return st, nil
}

// canonicalKinds yields the canonical kinds sorted by name so prewarm
// order (and thus which spec pays for shared artifacts) is deterministic.
func canonicalKinds(sch *Schedule) []string {
	kinds := make([]string, 0, len(sch.Canonical))
	for k := range sch.Canonical {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// jitterSeed derives the deterministic backoff-jitter seed for one
// request: the owning client's arrival seed offset by the request's
// sequence number, so every request jitters differently but identically
// across runs of the same schedule. Hand-built schedules without Seeds
// fall back to the sequence number alone.
func (s *Schedule) jitterSeed(req Request) int64 {
	if req.Client < len(s.Seeds) {
		return s.Seeds[req.Client] + int64(req.Seq)
	}
	return int64(req.Seq)
}

// fire drives one request's lifecycle: submit (with 429 backoff honoring
// Retry-After plus seeded jitter), then stream events until the job goes
// terminal.
func fire(ctx context.Context, client *http.Client, opts Options, req Request, jitterSeed int64) RequestResult {
	rr := RequestResult{Seq: req.Seq, Client: req.Client, Kind: req.Kind, Warm: req.Warm, Tenant: req.Tenant}
	ctx, cancel := context.WithTimeout(ctx, opts.RequestTimeout)
	defer cancel()
	t0 := time.Now()

	var jrng *rand.Rand // lazily seeded; most requests never hit a 429
	id := ""
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			opts.BaseURL+"/jobs", strings.NewReader(string(req.Body)))
		if err != nil {
			return rr.fail("error", err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		// Tenant identity rides as headers, never in the body — the job's
		// artifact/checkpoint identity stays tenant-independent.
		if req.Tenant != "" {
			hreq.Header.Set("X-Rescue-Client", req.Tenant)
		}
		if req.Class != "" {
			hreq.Header.Set("X-Rescue-Class", req.Class)
		}
		resp, err := client.Do(hreq)
		if err != nil {
			return rr.fail("error", err)
		}
		if resp.StatusCode == http.StatusAccepted {
			var sn struct {
				ID string `json:"id"`
			}
			err := json.NewDecoder(resp.Body).Decode(&sn)
			resp.Body.Close()
			if err != nil || sn.ID == "" {
				return rr.fail("error", fmt.Errorf("bad submit response: %v", err))
			}
			id = sn.ID
			break
		}
		io.Copy(io.Discard, resp.Body)
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			return rr.fail("error", fmt.Errorf("submit: HTTP %d", resp.StatusCode))
		}
		if attempt >= opts.MaxRetries {
			rr.SubmitMS = sinceMS(t0)
			rr.TotalMS = rr.SubmitMS
			rr.State = "rejected"
			rr.Err = fmt.Sprintf("still 429 after %d retries", attempt)
			return rr
		}
		rr.Retries++
		if jrng == nil {
			jrng = rand.New(rand.NewSource(jitterSeed))
		}
		wait := backoff(retryAfter, opts.RetryCap)
		// Seeded jitter in [0, wait/2]: a thundering herd that got the same
		// Retry-After estimate spreads out instead of resubmitting in
		// lockstep, and the spread replays identically run to run.
		wait += time.Duration(jrng.Int63n(int64(wait)/2 + 1))
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return rr.fail("error", ctx.Err())
		}
	}
	rr.SubmitMS = sinceMS(t0)

	var state string
	var dropped int
	var err error
	if req.Seq > 0 && req.Seq <= opts.SlowReaders {
		state, dropped, err = lateReplay(ctx, client, opts.BaseURL, id, opts.SlowReadDelay)
	} else {
		state, dropped, err = streamUntilDone(ctx, client, opts.BaseURL, id)
	}
	rr.TotalMS = sinceMS(t0)
	rr.Dropped = dropped
	if err != nil {
		return rr.fail("error", err)
	}
	rr.State = state
	return rr
}

// lateReplay is the slow-consumer path: poll the snapshot until the job
// is terminal, then read the retained event log in one pass, counting
// what the server's bounded buffer evicted in the meantime.
func lateReplay(ctx context.Context, client *http.Client, base, id string, every time.Duration) (string, int, error) {
	for {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id, nil)
		if err != nil {
			return "", 0, err
		}
		resp, err := client.Do(hreq)
		if err != nil {
			return "", 0, err
		}
		var sn struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sn)
		resp.Body.Close()
		if err != nil {
			return "", 0, err
		}
		switch sn.State {
		case "succeeded", "failed", "interrupted", "canceled":
			return streamUntilDone(ctx, client, base, id)
		}
		select {
		case <-time.After(every):
		case <-ctx.Done():
			return "", 0, ctx.Err()
		}
	}
}

func (r RequestResult) fail(state string, err error) RequestResult {
	r.State = state
	r.Err = err.Error()
	return r
}

func sinceMS(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// backoff converts a Retry-After header into a wait: the server's
// estimate clamped to [100ms, cap]; an absent or malformed header falls
// back to the cap's floor.
func backoff(retryAfter string, cap time.Duration) time.Duration {
	wait := 100 * time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		wait = time.Duration(secs) * time.Second
	}
	if wait > cap {
		wait = cap
	}
	if wait < 100*time.Millisecond {
		wait = 100 * time.Millisecond
	}
	return wait
}

// streamUntilDone follows the job's NDJSON event stream and returns the
// terminal state from its done event plus the total events the server's
// bounded buffers dropped from this consumer's view. The stream ends
// when the job does, so reading to EOF is the completion wait.
func streamUntilDone(ctx context.Context, client *http.Client, base, id string) (string, int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("events: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	state := ""
	dropped := 0
	for sc.Scan() {
		var ev struct {
			Type  string `json:"type"`
			State string `json:"state"`
			Count int    `json:"count"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) == nil {
			switch ev.Type {
			case "done":
				state = ev.State
			case "dropped":
				dropped += ev.Count
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", dropped, err
	}
	if state == "" {
		return "", dropped, fmt.Errorf("event stream for %s ended without a done event", id)
	}
	return state, dropped, nil
}

type gauges struct {
	queueDepth, running, slots int64
}

func scrapeGauges(ctx context.Context, client *http.Client, base string) (gauges, error) {
	m, err := scrape(ctx, client, base)
	if err != nil {
		return gauges{}, err
	}
	return gauges{
		queueDepth: m["queue_depth"],
		running:    m["jobs_running"],
		slots:      m["scheduler_slots"],
	}, nil
}

func scrapeCache(ctx context.Context, client *http.Client, base string) (hits, misses int64, err error) {
	m, err := scrape(ctx, client, base)
	if err != nil {
		return 0, 0, err
	}
	return m["artifact_cache_hits_total"], m["artifact_cache_misses_total"], nil
}

// scrape pulls /metrics and parses the integer-valued lines.
func scrape(ctx context.Context, client *http.Client, base string) (map[string]int64, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	out := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		// Integer gauges parse directly; float-valued funcs parse via
		// ParseFloat so "0.25"-style lines still land (truncated).
		if n, err := strconv.ParseInt(val, 10, 64); err == nil {
			out[name] = n
		} else if f, err := strconv.ParseFloat(val, 64); err == nil {
			out[name] = int64(f)
		}
	}
	return out, sc.Err()
}

func logf(opts Options, format string, args ...any) {
	if opts.Logf != nil {
		opts.Logf(format, args...)
	}
}
