// Command rescue-atpg regenerates the paper's Table 3 ("Scan Chain data"):
// it builds the baseline and Rescue gate-level pipelines, inserts scan,
// runs the ATPG flow (random patterns + PODEM with fault dropping), and
// prints fault counts, scan cells, test vectors, tester cycles, and
// coverage for both designs. Fault simulation runs as a parallel campaign
// sharded across -workers cores; output is identical at any worker count.
//
// The run is resilient: SIGINT/SIGTERM finish in-flight chunks, flush the
// -checkpoint journal (if one was given), print the partial campaign
// stats, and exit 130; rerunning with -resume rehydrates the journaled
// work and converges bit-identically to an uninterrupted run. A -timeout
// deadline exits 124 the same way.
//
// Usage:
//
//	rescue-atpg [-small] [-seed N] [-backtracks N] [-workers N] [-timing=false]
//	            [-timeout D] [-progress] [-checkpoint path [-resume]]
//	            [-chaos-cancel-after N]
package main

import (
	"flag"
	"os"

	"rescue/internal/cli"
	"rescue/internal/flows"
)

func main() {
	small := flag.Bool("small", false, "use the reduced test configuration (2-way)")
	seed := flag.Int64("seed", 1, "ATPG random seed")
	backtracks := flag.Int("backtracks", 500, "PODEM backtrack limit")
	timing := flag.Bool("timing", true, "print wall-clock timings (disable for golden diffs)")
	ff := cli.AddFlowFlags(flag.CommandLine)
	flag.Parse()
	ff.Validate()
	ck := ff.OpenCheckpoint()

	ctx, stop := ff.Context()
	defer stop()

	res, err := flows.Table3(ctx, os.Stdout, flows.Table3Opts{
		Small:      *small,
		Seed:       *seed,
		Backtracks: *backtracks,
		Workers:    ff.Workers,
		Timing:     *timing,
	}, flows.Env{Ck: ck})
	if err != nil {
		cli.ExitFlow(err, res.Stats, ck)
	}
}
