package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("jobs_total") != c {
		t.Fatal("Counter must return the same instance for the same name")
	}

	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("latency_seconds")
	for _, v := range []float64{3, 1, 2} {
		h.Observe(v)
	}
	count, sum, min, max := h.Snapshot()
	if count != 3 || sum != 6 || min != 1 || max != 3 {
		t.Fatalf("histogram = (%d, %g, %g, %g), want (3, 6, 1, 3)", count, sum, min, max)
	}
}

// TestHistogramQuantileExact pins the nearest-rank definition on small
// exact samples — the loadgen's SLO verdicts ride on these values.
func TestHistogramQuantileExact(t *testing.T) {
	h := &Histogram{}
	// Observe 1..10 out of order; quantiles see the sorted view.
	for _, v := range []float64{7, 1, 10, 4, 2, 9, 3, 6, 5, 8} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},     // q=0 is the minimum
		{0.1, 1},   // ceil(0.1*10) = rank 1
		{0.5, 5},   // ceil(0.5*10) = rank 5
		{0.55, 6},  // ceil(0.55*10) = rank 6
		{0.9, 9},   // ceil(0.9*10) = rank 9
		{0.99, 10}, // ceil(0.99*10) = rank 10
		{1, 10},    // q=1 is the maximum
		{-2, 1},    // clamped to 0
		{7, 10},    // clamped to 1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}

	h2 := &Histogram{}
	h2.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h2.Quantile(q); got != 42 {
			t.Errorf("single-sample Quantile(%g) = %g, want 42", q, got)
		}
	}
}

// TestHistogramQuantileMonotone: p50 ≤ p90 ≤ p99 ≤ max for an arbitrary
// sample set, via both Quantile and the batch Quantiles call.
func TestHistogramQuantileMonotone(t *testing.T) {
	h := &Histogram{}
	v := 1.0
	for i := 0; i < 1000; i++ {
		v = v*1.1 + float64(i%17) // deterministic, spread-out positives
		h.Observe(v / (1 + v))
		h.Observe(float64(i % 97))
	}
	qs := h.Quantiles(0.5, 0.9, 0.99, 1)
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
	if got := h.Quantile(0.5); got != qs[0] {
		t.Fatalf("Quantile(0.5) = %g, Quantiles batch = %g", got, qs[0])
	}
	_, _, _, max := h.Snapshot()
	if qs[3] != max {
		t.Fatalf("Quantile(1) = %g, want max %g", qs[3], max)
	}
}

// TestHistogramQuantileEmpty: an empty histogram reports 0 for every
// quantile and never panics.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := &Histogram{}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	if qs := h.Quantiles(0.5, 0.99); qs[0] != 0 || qs[1] != 0 {
		t.Fatalf("empty Quantiles = %v, want zeros", qs)
	}
}

// TestHistogramReservoirBounded: past the sample cap the buffer stays
// fixed-size, quantiles stay inside the observed range, and identical
// observation sequences produce identical quantiles (determinism the
// loadgen's cross-commit comparisons rely on).
func TestHistogramReservoirBounded(t *testing.T) {
	run := func() (float64, float64) {
		h := &Histogram{}
		for i := 0; i < 3*maxHistogramSamples; i++ {
			h.Observe(float64(i % 1000))
		}
		return h.Quantile(0.5), h.Quantile(0.99)
	}
	p50a, p99a := run()
	p50b, p99b := run()
	if p50a != p50b || p99a != p99b {
		t.Fatalf("reservoir quantiles not deterministic: (%g,%g) vs (%g,%g)", p50a, p99a, p50b, p99b)
	}
	if p50a < 0 || p50a > 999 || p99a < 0 || p99a > 999 {
		t.Fatalf("reservoir quantiles out of observed range: p50=%g p99=%g", p50a, p99a)
	}
	if p99a < p50a {
		t.Fatalf("reservoir quantiles not monotone: p50=%g p99=%g", p50a, p99a)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Gauge("b_depth").Set(4)
	r.Histogram("c_seconds").Observe(0.5)
	r.RegisterFunc("d_ratio", func() float64 { return 0.25 })

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 1\n",
		"# TYPE b_depth gauge\nb_depth 4\n",
		"c_seconds_count 1\n",
		"c_seconds_sum 0.5\n",
		"c_seconds_p50 0.5\n",
		"c_seconds_p99 0.5\n",
		"d_ratio 0.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: a_total before b_depth before c_seconds before d_ratio.
	if strings.Index(out, "a_total") > strings.Index(out, "b_depth") ||
		strings.Index(out, "b_depth") > strings.Index(out, "c_seconds") {
		t.Errorf("WriteText output not sorted:\n%s", out)
	}
}

func TestSanitizeName(t *testing.T) {
	if got := SanitizeName("span.atpg-random seconds"); got != "span_atpg_random_seconds" {
		t.Fatalf("SanitizeName = %q", got)
	}
}

func TestSpanNoTracerIsNoop(t *testing.T) {
	done := Span(context.Background(), "anything")
	done() // must not panic
}

func TestSpanRecordsIntoTracer(t *testing.T) {
	r := NewRegistry()
	ctx := WithTracer(context.Background(), r)
	done := Span(ctx, "atpg_random")
	time.Sleep(time.Millisecond)
	done()
	if got := r.Counter("span_atpg_random_total").Value(); got != 1 {
		t.Fatalf("span counter = %d, want 1", got)
	}
	count, sum, _, _ := r.Histogram("span_atpg_random_seconds").Snapshot()
	if count != 1 || sum <= 0 {
		t.Fatalf("span histogram = (%d, %g), want one positive sample", count, sum)
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 9") {
		t.Fatalf("metrics body missing counter:\n%s", buf[:n])
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}
