package flows

import (
	"context"
	"fmt"
	"io"
	"time"

	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/rtl"
)

// DictOpts parameterizes the fault-dictionary build — the
// `rescue-dict build` command surface.
type DictOpts struct {
	Small   bool
	Workers int
}

// DictResult carries the dictionary, the campaign stats (partial on
// interrupt), and the detection summary.
type DictResult struct {
	Stats    fault.Stats
	Dict     *fault.Dictionary
	Detected int
	Faults   int
}

// DictBuild generates the test program, builds the full fault dictionary,
// and writes the CSV artifact to csvW. Progress commentary — what
// `rescue-dict build` prints to stdout around the CSV file — goes to
// infoW (pass io.Discard to get the bare artifact, as the daemon does).
func DictBuild(ctx context.Context, infoW, csvW io.Writer, o DictOpts, env Env) (DictResult, error) {
	var res DictResult
	sys, err := env.System(o.Small, rtl.RescueDesign)
	if err != nil {
		return res, fmt.Errorf("build: %w", err)
	}
	gen := atpg.DefaultGenConfig()
	gen.Workers = o.Workers
	tp, err := env.TestProgram(ctx, sys, o.Small, rtl.RescueDesign, gen)
	if err != nil {
		res.Stats = tp.Gen.Stats
		return res, err
	}
	fmt.Fprintf(infoW, "building dictionary over %d collapsed faults, %d vectors...\n",
		tp.Universe.CountCollapsed(), tp.Gen.Vectors)
	d, st, err := env.Dictionary(ctx, tp, testProgramKey(o.Small, rtl.RescueDesign, gen), o.Workers)
	if err != nil {
		res.Stats = st
		return res, err
	}
	res.Stats = st
	fmt.Fprintf(infoW, "campaign: %d fault-sims, %d word-sims, %d gate events, %d workers, %s\n",
		st.Faults, st.Words, st.Events, st.Workers, st.Wall.Round(time.Millisecond))
	if err := d.WriteCSV(csvW); err != nil {
		return res, err
	}
	res.Dict = d
	res.Detected = d.Detected()
	res.Faults = tp.Universe.CountCollapsed()
	return res, nil
}

// DictSystem builds the (system, test program) pair the diagnose
// subcommand needs — shared with the build path so both see identical
// artifacts.
func DictSystem(ctx context.Context, small bool, workers int, env Env) (*core.System, *core.TestProgram, error) {
	sys, err := env.System(small, rtl.RescueDesign)
	if err != nil {
		return nil, nil, fmt.Errorf("build: %w", err)
	}
	gen := atpg.DefaultGenConfig()
	gen.Workers = workers
	tp, err := env.TestProgram(ctx, sys, small, rtl.RescueDesign, gen)
	if err != nil {
		return nil, tp, err
	}
	return sys, tp, nil
}
