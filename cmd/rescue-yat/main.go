// Command rescue-yat reproduces the paper's Figure 9 (yield-adjusted
// throughput of no-redundancy / core-sparing / Rescue across technology
// nodes and core-growth rates, for a chosen PWP-stagnation node) and
// Table 2 (component relative areas).
//
// Usage:
//
//	rescue-yat -areas
//	rescue-yat [-stagnate 90|65] [-bench list] [-warmup N] [-commit N]
//	           [-workers N] [-timeout D]
//
// SIGINT/SIGTERM stop the study between simulations and exit 130; a
// -timeout deadline exits 124.
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"rescue/internal/area"
	"rescue/internal/cli"
	"rescue/internal/core"
)

func main() {
	areas := flag.Bool("areas", false, "print Table 2 and exit")
	stagnate := flag.Int("stagnate", 90, "node (nm) at which PWP stops improving (90 or 65)")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 23)")
	warmup := flag.Int64("warmup", 20_000, "warmup instructions per simulation")
	commit := flag.Int64("commit", 150_000, "measured instructions per simulation")
	workers := flag.Int("workers", 0, "simulation workers (0 = all cores)")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none); exceeded = exit 124")
	flag.Parse()
	cli.CheckWorkers(*workers)
	cli.CheckTimeout(*timeout)

	if *areas {
		printAreas()
		return
	}

	ctx, stop := cli.FlowContext(*timeout)
	defer stop()

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	fmt.Printf("Figure 9%s: YAT with PWP stagnating at %dnm\n", panel(*stagnate), *stagnate)
	fmt.Println("(building per-node degraded-IPC models: 65 simulations per benchmark per node)")
	models := map[int]*core.PerfModel{}
	for _, node := range area.Nodes() {
		start := time.Now()
		pm, err := core.BuildPerfModelFlow(ctx, node, names, *warmup, *commit, *workers)
		if err != nil {
			cli.ExitErr(err)
		}
		models[node.NodeNM] = pm
		fmt.Printf("  %dnm model built (%s)\n", node.NodeNM, time.Since(start).Round(time.Second))
	}

	rows, err := core.YATStudy(area.Node(*stagnate), models)
	if err != nil {
		cli.ExitErr(err)
	}
	fmt.Println()
	fmt.Printf("%5s %7s %6s %8s %8s %8s %12s\n",
		"node", "growth", "cores", "none", "+CS", "+Rescue", "Rescue/CS")
	for _, r := range rows {
		fmt.Printf("%4dnm %6.0f%% %6d %8.3f %8.3f %8.3f %+11.1f%%\n",
			r.NodeNM, r.Growth*100, r.Cores, r.RelNone, r.RelCS, r.RelRescue, r.RescueOverCSPct)
	}
	fmt.Println()
	fmt.Println("relative YAT = chip YAT / (cores x fault-free IPC), averaged over benchmarks")
	fmt.Println("paper headline (stagnate 90nm, 30% growth): +12% at 32nm, +22% at 18nm")
}

func panel(stagnate int) string {
	if stagnate == 90 {
		return "a"
	}
	return "b"
}

func printAreas() {
	b := area.BaselineWithScan()
	r := area.Rescue()
	fmt.Println("Table 2: Total areas and component relative areas (90nm)")
	fmt.Println()
	fmt.Printf("  Baseline core with scan: %6.1f mm²   (paper: ~96 mm²)\n", b.Total)
	fmt.Printf("  Rescue core:             %6.1f mm²   (paper: ~106.7 mm²)\n", r.Total)
	fmt.Println()
	fmt.Printf("  %-14s %9s %9s\n", "component", "pair mm²", "fraction")
	for g := area.Group(0); g < area.NumGroups; g++ {
		fmt.Printf("  %-14s %9.2f %8.1f%%\n", g, r.PairArea[g], r.Frac(g)*100)
	}
	fmt.Println()
	fmt.Println("  (paper's legible entries: int backend 15%, fp backend 21%, chipkill 40%)")
}
