package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"rescue/internal/fault"
	"rescue/internal/netlist"
	"rescue/internal/obs"
)

// IsolationReport is the outcome of the Section 6.1 campaign: randomly
// chosen faults per pipeline stage, each simulated against the generated
// scan patterns; its failing scan bits are mapped through the single-lookup
// isolation table and checked against the ground-truth fault site.
type IsolationReport struct {
	Requested  int
	Undetected int // sampled faults no pattern detects (excluded, resampled)
	Isolated   int // failing bits implicate exactly the faulty super-component
	Wrong      int // implicated super differs from the ground truth
	Ambiguous  int // failing bits span multiple super-components
	PerStage   map[string]StageIsolation
	// Stats records the fault-simulation campaign work behind the report.
	Stats fault.Stats
}

// StageIsolation is the per-stage breakdown.
type StageIsolation struct {
	Sampled, Isolated, Wrong, Ambiguous int
}

// Stages returns the six stages the paper samples (register read,
// writeback and commit are excluded: no significant logic beyond RAM
// tables).
func Stages() []string {
	return []string{"fetch", "decode", "rename", "issue", "execute", "memory"}
}

// IsolateCampaign samples perStage detectable gate faults from each listed
// stage (FF faults are scan cells — chipkill by construction — and chipkill
// components are excluded), runs full fault simulation for each, and
// verifies isolation. It mirrors the paper's 6000-fault TetraMax campaign.
//
// Simulation is sharded across workers (<= 0 = all cores) with fault
// dropping off — isolation needs every failing observation point. Faults
// are batch-simulated in sampling order and the report walk replays the
// serial logic exactly, so the outcome is identical at any worker count.
// It panics if the flow errors, which cannot happen without a cancellable
// context, a checkpoint, or an armed chaos budget.
func (s *System) IsolateCampaign(tp *TestProgram, perStage int, stages []string, seed int64, workers int) IsolationReport {
	rep, err := s.IsolateCampaignFlow(context.Background(), tp, perStage, stages, seed, workers, nil)
	if err != nil {
		panic(fmt.Sprintf("core: IsolateCampaign failed: %v", err))
	}
	return rep
}

// IsolateCampaignFlow is IsolateCampaign with cooperative cancellation and
// an optional campaign checkpoint journal: the sampling sequence is fully
// determined by the seed, so a killed run's journaled batches rehydrate on
// resume and the report converges bit-identically to an uninterrupted run
// at any worker count. On interrupt the partial report — carrying the
// campaign Stats so far — is returned alongside the error.
func (s *System) IsolateCampaignFlow(ctx context.Context, tp *TestProgram, perStage int, stages []string, seed int64, workers int, ck *fault.Checkpoint) (IsolationReport, error) {
	defer obs.Span(ctx, "isolate_campaign")()
	rng := rand.New(rand.NewSource(seed))
	n := s.Design.N
	rep := IsolationReport{PerStage: map[string]StageIsolation{}}

	// candidate faults per stage: gate faults in non-chipkill components
	byStage := map[string][]netlist.Fault{}
	for _, f := range tp.Universe.Collapsed {
		if f.Gate < 0 {
			continue
		}
		comp := n.CompName(n.FaultSiteComp(f))
		super := s.Design.Grouping[comp]
		if super == "CHIPKILL" {
			continue
		}
		stage := s.Design.StageOfComp[comp]
		byStage[stage] = append(byStage[stage], f)
	}

	camp := fault.NewCampaign(tp.Gen.Sim, fault.CampaignConfig{Workers: workers})
	for _, stage := range stages {
		cands := byStage[stage]
		if len(cands) == 0 {
			continue
		}
		st := rep.PerStage[stage]
		// sample without replacement
		perm := rng.Perm(len(cands))
		// Simulate candidates in permutation order, in batches sized by how
		// many detectable faults are still needed (plus slack for the
		// undetectable ones that get resampled), ahead of the serial walk.
		results := make([]fault.Result, 0, perStage)
		simmed := 0
		taken := 0
		for pi := 0; pi < len(perm) && taken < perStage; pi++ {
			if pi >= simmed {
				need := perStage - taken
				batch := need + need/4 + 16
				if batch > len(perm)-simmed {
					batch = len(perm) - simmed
				}
				faults := make([]netlist.Fault, batch)
				for k := 0; k < batch; k++ {
					faults[k] = cands[perm[simmed+k]]
				}
				res, cst, err := camp.RunCheckpoint(ctx, ck, faults)
				rep.Stats.Add(cst)
				if err != nil {
					rep.PerStage[stage] = st
					return rep, err
				}
				results = append(results, res...)
				simmed += batch
			}
			f := cands[perm[pi]]
			res := results[pi]
			rep.Requested++
			if !res.Detected {
				rep.Undetected++
				continue // resample: the paper inserts detectable faults
			}
			taken++
			st.Sampled++
			supers := s.Audit.IsolateEach(res.FailObs)
			truth := s.Design.Grouping[n.CompName(n.FaultSiteComp(f))]
			switch {
			case len(supers) == 1 && supers[0] == truth:
				rep.Isolated++
				st.Isolated++
			case len(supers) == 1:
				rep.Wrong++
				st.Wrong++
			default:
				rep.Ambiguous++
				st.Ambiguous++
			}
		}
		rep.PerStage[stage] = st
	}
	return rep, nil
}

// MultiFaultIsolation exercises the ICI corollary of Section 3.1: faults
// injected simultaneously into nFaults DIFFERENT super-components must all
// be isolated by the same pattern set. It returns the number of trials in
// which every implicated super-component matched a ground-truth faulty one
// and every faulty super with a detectable fault was implicated.
//
// Simultaneous injection is simulated by unioning each fault's failing
// bits — valid under ICI because a fault in one component cannot influence
// observation points of another (their cones are disjoint by audit).
//
// Sampling depends only on the seed, so all trials' faults are drawn
// first and simulated as one campaign across workers (<= 0 = all cores).
// It panics if the flow errors, which cannot happen without a cancellable
// context, a checkpoint, or an armed chaos budget.
func (s *System) MultiFaultIsolation(tp *TestProgram, trials, nFaults int, seed int64, workers int) (ok, total int) {
	ok, total, err := s.MultiFaultIsolationFlow(context.Background(), tp, trials, nFaults, seed, workers, nil)
	if err != nil {
		panic(fmt.Sprintf("core: MultiFaultIsolation failed: %v", err))
	}
	return ok, total
}

// MultiFaultIsolationFlow is MultiFaultIsolation with cooperative
// cancellation and an optional campaign checkpoint journal: the single
// deduplicated campaign resumes at chunk granularity after a kill and the
// trial outcomes are bit-identical to an uninterrupted run.
func (s *System) MultiFaultIsolationFlow(ctx context.Context, tp *TestProgram, trials, nFaults int, seed int64, workers int, ck *fault.Checkpoint) (ok, total int, err error) {
	defer obs.Span(ctx, "isolate_multi")()
	rng := rand.New(rand.NewSource(seed))
	n := s.Design.N
	var cands []netlist.Fault
	for _, f := range tp.Universe.Collapsed {
		if f.Gate < 0 {
			continue
		}
		comp := n.CompName(n.FaultSiteComp(f))
		if s.Design.Grouping[comp] == "CHIPKILL" {
			continue
		}
		cands = append(cands, f)
	}
	// Draw every trial's faults up front (rng consumption identical to the
	// serial per-trial loop), then simulate the union in one campaign.
	chosenPerTrial := make([]map[string]netlist.Fault, trials)
	var all []netlist.Fault
	seen := map[netlist.Fault]bool{}
	for t := 0; t < trials; t++ {
		chosen := map[string]netlist.Fault{}
		for tries := 0; tries < 200 && len(chosen) < nFaults; tries++ {
			f := cands[rng.Intn(len(cands))]
			super := s.Design.Grouping[n.CompName(n.FaultSiteComp(f))]
			if _, dup := chosen[super]; !dup {
				chosen[super] = f
			}
		}
		chosenPerTrial[t] = chosen
		for _, f := range chosen {
			if !seen[f] {
				seen[f] = true
				all = append(all, f)
			}
		}
	}
	// Deterministic campaign order: sort the deduplicated fault list.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Gate != b.Gate {
			return a.Gate < b.Gate
		}
		if a.FF != b.FF {
			return a.FF < b.FF
		}
		if a.Pin != b.Pin {
			return a.Pin < b.Pin
		}
		return !a.StuckAt1 && b.StuckAt1
	})
	camp := fault.NewCampaign(tp.Gen.Sim, fault.CampaignConfig{Workers: workers})
	results, _, err := camp.RunCheckpoint(ctx, ck, all)
	if err != nil {
		return 0, 0, err
	}
	resOf := make(map[netlist.Fault]fault.Result, len(all))
	for i, f := range all {
		resOf[f] = results[i]
	}

	for t := 0; t < trials; t++ {
		total++
		var allObs []int
		truth := map[string]bool{}
		detected := map[string]bool{}
		for super, f := range chosenPerTrial[t] {
			truth[super] = true
			res := resOf[f]
			if res.Detected {
				detected[super] = true
				allObs = append(allObs, res.FailObs...)
			}
		}
		supers := s.Audit.IsolateEach(allObs)
		good := len(supers) == len(detected)
		for _, sp := range supers {
			if !truth[sp] {
				good = false
			}
		}
		if good && len(detected) > 0 {
			ok++
		}
	}
	return ok, total, nil
}

// StageNames lists stages present in the design, sorted (debug helper).
func (s *System) StageNames() []string {
	set := map[string]bool{}
	for _, st := range s.Design.StageOfComp {
		set[st] = true
	}
	out := make([]string, 0, len(set))
	for st := range set {
		out = append(out, st)
	}
	sort.Strings(out)
	return out
}
