// Package yield implements the paper's yield methodology (Section 5):
//
//   - the ITRS PWP equation (EQ 1) used in reverse — defect density is held
//     at the calibrated value until a chosen stagnation node, then grows as
//     1/s² with the feature-size scaling factor;
//   - the negative-binomial (gamma-mixed Poisson) clustered yield model
//     with ITRS's alpha = 2, calibrated so a reference 140mm² chip yields
//     the economically-acceptable 83%;
//   - per-configuration probabilities for a core built from redundant
//     fault-equivalence groups plus a chipkill region;
//   - yield-adjusted throughput, YAT (EQ 2 / EQ 3): the gamma-mixture
//     average of expected IPC over all degraded configurations.
package yield

import (
	"math"

	"rescue/internal/area"
)

// RefChipArea is the ITRS chip area (mm²) whose random-defect-limited
// yield is calibrated to RefYield.
const (
	RefChipArea = 140.0
	RefYield    = 0.83
	Alpha       = 2.0 // ITRS clustering parameter
)

// RefLambda returns the calibrated mean faults per RefChipArea: the lambda
// at which the negative binomial yield (1+λ/α)^(−α) equals RefYield.
func RefLambda() float64 {
	return Alpha * (math.Pow(RefYield, -1/Alpha) - 1)
}

// RefDensity returns the calibrated mean fault density in faults/mm².
func RefDensity() float64 { return RefLambda() / RefChipArea }

// Density returns the mean fault density (faults/mm²) at a node, given the
// node at which PWP (and hence defect-density improvement) stagnates:
// before stagnation, process improvements hold density at the calibrated
// value; after, EQ 1 in reverse makes faults-per-area grow as 1/s².
func Density(node, stagnate area.Scaling) float64 {
	d := RefDensity()
	if node.NodeNM >= stagnate.NodeNM {
		return d
	}
	s := float64(node.NodeNM) / float64(stagnate.NodeNM) // < 1
	return d / (s * s)
}

// NegBinomialYield returns the clustered yield of a block with mean fault
// count lambda: Y = (1 + λ/α)^(−α).
func NegBinomialYield(lambda float64) float64 {
	return math.Pow(1+lambda/Alpha, -Alpha)
}

// gammaNodes integrates ∫ f(x) g(x) dx where g is the Gamma(shape=α,
// mean=1) mixing density, using fixed-step Simpson over x ∈ (0, xmax].
// With α=2 the density is x·4·e^(−2x) (θ = 1/2).
const gammaSteps = 2000

// MixGamma averages f over the ITRS clustering mixture: the local defect
// density is λ·x with x ~ Gamma(shape α, mean 1), α = 2.
func MixGamma(f func(x float64) float64) float64 {
	return MixGammaAlpha(Alpha, f)
}

// MixGammaAlpha is MixGamma with an explicit clustering parameter — small
// alpha = heavy clustering, large alpha approaches the Poisson model. Used
// by the clustering-sensitivity ablation.
func MixGammaAlpha(alpha float64, f func(x float64) float64) float64 {
	xmax := 6.0 + 24.0/alpha // cover the long tail of small-alpha mixtures
	h := xmax / gammaSteps
	theta := 1.0 / alpha
	norm := math.Gamma(alpha) * math.Pow(theta, alpha)
	pdf := func(x float64) float64 {
		return math.Pow(x, alpha-1) * math.Exp(-x/theta) / norm
	}
	sum := 0.0
	for i := 0; i <= gammaSteps; i++ {
		x := float64(i) * h
		w := 2.0
		switch {
		case i == 0 || i == gammaSteps:
			w = 1
		case i%2 == 1:
			w = 4
		}
		if x == 0 && alpha < 1 {
			continue // integrable singularity; Simpson weight 1 at 0 dropped
		}
		sum += w * pdf(x) * f(x)
	}
	return sum * h / 3
}

// NegBinomialYieldAlpha is the clustered yield with an explicit alpha.
func NegBinomialYieldAlpha(lambda, alpha float64) float64 {
	return math.Pow(1+lambda/alpha, -alpha)
}

// PoissonClean returns the probability a block of mean fault count lambda
// is fault-free under the conditional (given mixture x = 1) Poisson model.
func PoissonClean(lambda float64) float64 { return math.Exp(-lambda) }

// PairState is a redundant pair's condition.
type PairState int

// Pair conditions.
const (
	BothOK PairState = iota
	OneDown
	BothDown
)

// PairProb returns the probability distribution over a pair's states given
// the mean fault count of a single member.
func PairProb(lambdaSingle float64) [3]float64 {
	p := PoissonClean(lambdaSingle) // one member clean
	return [3]float64{p * p, 2 * p * (1 - p), (1 - p) * (1 - p)}
}

// CoreConfig identifies one degraded configuration by how many members of
// each redundant pair are down (0 or 1; 2 means dead and never appears in
// the enumeration).
type CoreConfig struct {
	FEDown, IntIQDown, FPIQDown, LSQDown, IntBEDown, FPBEDown int
}

// Configs enumerates the 64 live degraded configurations.
func Configs() []CoreConfig {
	var out []CoreConfig
	for fe := 0; fe < 2; fe++ {
		for ii := 0; ii < 2; ii++ {
			for fi := 0; fi < 2; fi++ {
				for l := 0; l < 2; l++ {
					for ib := 0; ib < 2; ib++ {
						for fb := 0; fb < 2; fb++ {
							out = append(out, CoreConfig{fe, ii, fi, l, ib, fb})
						}
					}
				}
			}
		}
	}
	return out
}

// CoreModel bundles what the YAT computation needs to know about a core:
// its per-group areas and the IPC of every live configuration (filled by
// the caller from performance simulation; Full is the no-fault IPC).
type CoreModel struct {
	Area area.Model
	Full float64
	IPC  map[CoreConfig]float64
}

// ScaleToNode returns a copy of cm with every group area scaled to the
// technology node under core growth g, so the per-mm² defect density
// applies unchanged. ChipAlpha and the Monte Carlo fab engine share this,
// which is what makes the empirical and analytic models see identical
// areas.
func ScaleToNode(cm CoreModel, node area.Scaling, growth float64) CoreModel {
	scale := node.CoreArea(cm.Area.Total, growth) / cm.Area.Total
	for g := area.Group(0); g < area.NumGroups; g++ {
		cm.Area.PairArea[g] *= scale
	}
	cm.Area.Total *= scale
	return cm
}

// YAT returns the expected IPC of one core at conditional fault density d
// (faults/mm², no mixing) — EQ 2's integrand, exported so the empirical
// Monte Carlo fleet can be compared against the same analytic curve.
func (cm CoreModel) YAT(d float64) float64 { return cm.yatCore(d) }

// Yield returns the probability that a core at conditional fault density d
// is functional, possibly degraded: the chipkill region clean and no
// redundant pair with both members down.
func (cm CoreModel) Yield(d float64) float64 {
	y := PoissonClean(d * cm.Area.SingleArea(area.Chipkill))
	for _, g := range []area.Group{area.Frontend, area.IntIQ, area.FPIQ, area.LSQ, area.IntBE, area.FPBE} {
		y *= 1 - PairProb(d * cm.Area.SingleArea(g))[BothDown]
	}
	return y
}

// yatCore returns the expected IPC of one Rescue core at fault density d
// (faults/mm², conditional — no mixing here).
func (cm CoreModel) yatCore(d float64) float64 {
	lam := func(g area.Group) float64 { return d * cm.Area.SingleArea(g) }
	pFE := PairProb(lam(area.Frontend))
	pII := PairProb(lam(area.IntIQ))
	pFI := PairProb(lam(area.FPIQ))
	pL := PairProb(lam(area.LSQ))
	pIB := PairProb(lam(area.IntBE))
	pFB := PairProb(lam(area.FPBE))
	ck := PoissonClean(d * cm.Area.SingleArea(area.Chipkill))
	total := 0.0
	for _, c := range Configs() {
		p := pFE[c.FEDown] * pII[c.IntIQDown] * pFI[c.FPIQDown] *
			pL[c.LSQDown] * pIB[c.IntBEDown] * pFB[c.FPBEDown]
		ipc, ok := cm.IPC[c]
		if !ok {
			continue
		}
		total += p * ipc
	}
	return ck * total
}

// csCore returns the expected IPC of a core under core sparing: all or
// nothing.
func csCore(fullIPC, lambdaCore float64) float64 {
	return fullIPC * PoissonClean(lambdaCore)
}

// ChipResult is one scenario's absolute YAT values (IPC summed over cores,
// averaged over the clustering mixture).
type ChipResult struct {
	Cores        int
	NoRedundancy float64 // single fault anywhere kills the whole chip
	CoreSparing  float64 // faulty cores disabled
	Rescue       float64 // Rescue cores with degraded modes
	Ideal        float64 // 100% yield, no degradation: Cores × full IPC
}

// Chip computes the Figure 9 quantities for one (node, stagnation, growth)
// scenario. baseCore/rescueCore give per-variant area and IPC models
// (rescueCore.IPC must cover Configs(); baseCore needs only Full).
func Chip(node, stagnate area.Scaling, growth float64, baseCore, rescueCore CoreModel) ChipResult {
	return ChipAlpha(node, stagnate, growth, baseCore, rescueCore, Alpha)
}

// ChipAlpha is Chip with an explicit clustering parameter (ablation knob).
func ChipAlpha(node, stagnate area.Scaling, growth float64, baseCore, rescueCore CoreModel, alpha float64) ChipResult {
	d := Density(node, stagnate)
	n := node.Cores(growth)
	baseArea := node.CoreArea(baseCore.Area.Total, growth)

	res := ChipResult{Cores: n, Ideal: float64(n) * baseCore.Full}
	res.NoRedundancy = MixGammaAlpha(alpha, func(x float64) float64 {
		lamChip := d * x * baseArea * float64(n)
		return float64(n) * baseCore.Full * PoissonClean(lamChip)
	})
	res.CoreSparing = MixGammaAlpha(alpha, func(x float64) float64 {
		lamCore := d * x * baseArea
		return float64(n) * csCore(baseCore.Full, lamCore)
	})
	// Rescue group areas scale with the node
	cm := ScaleToNode(rescueCore, node, growth)
	res.Rescue = MixGammaAlpha(alpha, func(x float64) float64 {
		return float64(n) * cm.yatCore(d*x)
	})
	return res
}
