package fault

import (
	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// Oracle is a brute-force reference fault simulator: for every
// (fault, pattern word) it re-evaluates the complete netlist through the
// scan package's load/capture semantics — no event-driven scheduling, no
// levels, no fault dropping, no shared scratch state, no per-net reader
// maps. It implements exactly the same Result contract as Sim (see the
// ordering documentation on Result) while sharing none of Sim's machinery,
// so the two engines cannot share a bug: the differential harness in
// internal/diffcheck cross-checks them on thousands of generated circuits,
// the methodology of differential simulator validation (cf. "Towards
// Accurate Performance Modeling of RISC-V Designs").
//
// An Oracle is orders of magnitude slower than Sim — cost is
// O(gates × words) per fault regardless of how far the fault effect
// propagates — which is the point: it is the simple, obviously-correct
// implementation the optimized engine is measured against.
type Oracle struct {
	C        *scan.Chain
	Patterns []*scan.Pattern

	good [][]uint64 // [word][obs] good-machine responses, brute-forced
}

// NewOracle builds an oracle over the chain's netlist and precomputes
// good-machine responses for the given patterns (which may be nil; use
// AddPattern to grow the set).
func NewOracle(c *scan.Chain, patterns []*scan.Pattern) *Oracle {
	o := &Oracle{C: c}
	for _, p := range patterns {
		o.AddPattern(p)
	}
	return o
}

// AddPattern appends a pattern word and brute-forces its good response.
func (o *Oracle) AddPattern(p *scan.Pattern) {
	o.good = append(o.good, o.C.ApplyTest(p, netlist.NoFault))
	o.Patterns = append(o.Patterns, p)
}

// Run simulates fault f against every pattern word by full netlist
// re-evaluation, honoring the same maxFail cap semantics as Sim.Run: with
// maxFail > 0 the sweep stops at the end of the first word that reaches
// the cap and Fails is truncated to the canonical prefix.
func (o *Oracle) Run(f netlist.Fault, maxFail int) Result {
	return o.RunWords(f, maxFail, 0, len(o.Patterns))
}

// RunWords simulates fault f against pattern words [wLo, wHi) only — the
// oracle twin of Sim.RunWord.
func (o *Oracle) RunWords(f netlist.Fault, maxFail, wLo, wHi int) Result {
	res := Result{}
	numObs := o.C.N.NumFFs() + len(o.C.N.Outputs)
	var seen []bool
	for w := wLo; w < wHi; w++ {
		p := o.Patterns[w]
		mask := p.LaneMask()
		bad := o.C.ApplyTest(p, f)
		good := o.good[w]
		for oi := 0; oi < numObs; oi++ {
			diff := (bad[oi] ^ good[oi]) & mask
			if diff == 0 {
				continue
			}
			res.Detected = true
			if seen == nil {
				seen = make([]bool, numObs)
			}
			if !seen[oi] {
				seen[oi] = true
				res.FailObs = append(res.FailObs, oi)
			}
			for lane := 0; lane < 64 && diff != 0; lane++ {
				if diff&(1<<uint(lane)) != 0 {
					res.Fails = append(res.Fails, FailBit{Word: w, Lane: lane, Obs: oi})
					diff &^= 1 << uint(lane)
				}
			}
		}
		if maxFail > 0 && len(res.Fails) >= maxFail {
			res.Fails = res.Fails[:maxFail]
			return res
		}
	}
	return res
}

// DetectAll mirrors Sim.DetectAll on the oracle engine.
func (o *Oracle) DetectAll(faults []netlist.Fault) []bool {
	out := make([]bool, len(faults))
	for i, f := range faults {
		out[i] = o.Run(f, 1).Detected
	}
	return out
}
