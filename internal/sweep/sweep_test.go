package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"rescue/internal/flows"
	"rescue/internal/rtl"
	"rescue/internal/uarch"
)

// TestPaperPresetParams pins the sweep's fixed point: the paper preset
// derives exactly the Table 1 parameter sets the rest of the codebase
// hard-codes, so a sweep over it reproduces the goldens.
func TestPaperPresetParams(t *testing.T) {
	v, ok := Preset("paper")
	if !ok {
		t.Fatal("paper preset missing")
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := v.Perf.BaselineParams(), uarch.DefaultParams(); !reflect.DeepEqual(got, want) {
		t.Errorf("baseline params diverge from uarch.DefaultParams:\n got %+v\nwant %+v", got, want)
	}
	resc, err := v.Perf.RescueParams()
	if err != nil {
		t.Fatal(err)
	}
	if want := uarch.RescueParams(); !reflect.DeepEqual(resc, want) {
		t.Errorf("rescue params diverge from uarch.RescueParams:\n got %+v\nwant %+v", resc, want)
	}
}

// TestPresetsValidate sanity-checks every registered preset.
func TestPresetsValidate(t *testing.T) {
	for _, name := range Presets() {
		v, ok := Preset(name)
		if !ok {
			t.Fatalf("Presets listed %q but Preset refused it", name)
		}
		if err := v.Validate(); err != nil {
			t.Errorf("preset %q: %v", name, err)
		}
	}
}

// TestExpandDeterminism pins the grid semantics: deterministic order and
// digests, axis-key sorting, and the single-point round trip used by
// remote dispatch.
func TestExpandDeterminism(t *testing.T) {
	spec := Spec{
		Presets:   []string{"paper", "lean-wakeup"},
		Axes:      map[string][]string{"scan-chains": {"1", "4"}, "comp-buf": {"2", "4"}},
		Nodes:     []int{18, 32},
		Stagnates: []int{90},
		Small:     true,
	}
	a, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2 * 2; len(a) != want {
		t.Fatalf("got %d points, want %d", len(a), want)
	}
	b, _ := spec.Expand()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	seen := map[string]bool{}
	for i, pt := range a {
		if pt.Index != i {
			t.Errorf("point %d has index %d", i, pt.Index)
		}
		if seen[pt.Digest] {
			t.Errorf("duplicate digest %s", pt.Digest)
		}
		seen[pt.Digest] = true

		one := SinglePointSpec(spec, pt)
		pts, err := one.Expand()
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 1 {
			t.Fatalf("single-point spec expanded to %d points", len(pts))
		}
		if pts[0].Digest != pt.Digest {
			t.Errorf("single-point digest %s != %s", pts[0].Digest, pt.Digest)
		}
	}
}

// TestExpandRejects pins the usage-error surface.
func TestExpandRejects(t *testing.T) {
	for name, spec := range map[string]Spec{
		"no presets":     {},
		"unknown preset": {Presets: []string{"gigantic"}},
		"unknown axis":   {Presets: []string{"paper"}, Axes: map[string][]string{"cache-ways": {"2"}}},
		"empty axis":     {Presets: []string{"paper"}, Axes: map[string][]string{"comp-buf": {}}},
		"bad value":      {Presets: []string{"paper"}, Axes: map[string][]string{"comp-buf": {"two"}}},
		"bad replay":     {Presets: []string{"paper"}, Axes: map[string][]string{"replay": {"psychic"}}},
		"bad node":       {Presets: []string{"paper"}, Nodes: []int{45}},
		"bad stagnate":   {Presets: []string{"paper"}, Stagnates: []int{7}},
		"bad selfheal":   {Presets: []string{"paper"}, SelfHeal: []float64{1.5}},
		"invalid shape":  {Presets: []string{"paper"}, Axes: map[string][]string{"net-iq": {"7"}}},
		"bad chains":     {Presets: []string{"paper"}, Axes: map[string][]string{"scan-chains": {"0"}}},
	} {
		if _, err := spec.Expand(); err == nil {
			t.Errorf("%s: expansion should fail", name)
		}
	}
}

// tinySpec is the cheap grid the engine tests share: small netlist, a
// light fleet, two variants differing only in the chipkill-share knob —
// distinct points (different digests, yields, areas) that still share the
// netlist, ATPG, and perf-model artifacts, keeping each run to one ATPG
// campaign.
func tinySpec() Spec {
	return Spec{
		Presets: []string{"paper"},
		Axes:    map[string][]string{"chipkill-scale": {"1", "0.8"}},
		Nodes:   []int{18},
		Small:   true,
		Dies:    40,
		Warmup:  100,
		Commit:  500,
	}
}

func runNDJSON(t *testing.T, spec Spec, o Options) []byte {
	t.Helper()
	fr, err := Run(context.Background(), spec, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refOnce computes the tinySpec reference frontier once for every test
// that needs an uninterrupted local baseline.
var refOnce struct {
	sync.Once
	ndjson []byte
	err    error
}

func refNDJSON(t *testing.T) []byte {
	t.Helper()
	refOnce.Do(func() {
		fr, err := Run(context.Background(), tinySpec(), Options{
			Env: flows.Env{Store: flows.NewStore()}, Concurrency: 1,
		})
		if err != nil {
			refOnce.err = err
			return
		}
		var buf bytes.Buffer
		if refOnce.err = fr.WriteNDJSON(&buf); refOnce.err == nil {
			refOnce.ndjson = buf.Bytes()
		}
	})
	if refOnce.err != nil {
		t.Fatal(refOnce.err)
	}
	return refOnce.ndjson
}

// TestRunByteIdenticalAcrossConcurrency is the core determinism contract:
// the frontier NDJSON is byte-identical at any point concurrency.
func TestRunByteIdenticalAcrossConcurrency(t *testing.T) {
	spec := tinySpec()
	seq := refNDJSON(t)
	par := runNDJSON(t, spec, Options{Env: flows.Env{Store: flows.NewStore()}, Concurrency: 4})
	if !bytes.Equal(seq, par) {
		t.Fatalf("frontier differs across concurrency:\n-- conc 1 --\n%s\n-- conc 4 --\n%s", seq, par)
	}
	if len(bytes.Split(bytes.TrimSpace(seq), []byte("\n"))) != 2 {
		t.Fatalf("want 2 NDJSON lines:\n%s", seq)
	}
}

// TestRunResume pins the kill/resume contract: interrupt a sweep after
// its first completed point, resume into the same checkpoint directory,
// and get byte-identical NDJSON — with the completed point served from
// the journal, not recomputed.
func TestRunResume(t *testing.T) {
	spec := tinySpec()
	want := refNDJSON(t)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := Run(ctx, spec, Options{
		Env:           flows.Env{Store: flows.NewStore()},
		CheckpointDir: dir,
		Concurrency:   1,
		OnPoint: func(ev PointEvent) {
			if ev.Phase == "done" {
				once.Do(cancel)
			}
		},
	})
	if err == nil {
		t.Fatal("interrupted run should fail")
	}
	if _, err := os.Stat(filepath.Join(dir, frontierJournal)); err != nil {
		t.Fatalf("journal should survive the interrupt: %v", err)
	}

	var cached int
	got := runNDJSON(t, spec, Options{
		Env:           flows.Env{Store: flows.NewStore()},
		CheckpointDir: dir,
		Resume:        true,
		OnPoint: func(ev PointEvent) {
			if ev.Phase == "cached" {
				cached++
			}
		},
	})
	if cached == 0 {
		t.Fatal("resume recomputed every point — journal unused")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed frontier differs:\n-- fresh --\n%s\n-- resumed --\n%s", want, got)
	}
	if _, err := os.Stat(filepath.Join(dir, frontierJournal)); !os.IsNotExist(err) {
		t.Fatal("journal should be removed after clean completion")
	}
}

// TestRunRefusesStaleJournal mirrors the flow CLIs: an existing journal
// without resume is an error, never silently clobbered.
func TestRunRefusesStaleJournal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, frontierJournal), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), tinySpec(), Options{Env: flows.Env{Store: flows.NewStore()}, CheckpointDir: dir})
	if err == nil {
		t.Fatal("existing journal without resume should be refused")
	}
}

// TestStoreSharing is the cross-variant artifact-sharing contract: two
// sweep points that differ only in technology node share the netlist and
// ATPG artifacts (one build each), while points with different variants
// never collide.
func TestStoreSharing(t *testing.T) {
	store := flows.NewStore()
	spec := tinySpec()
	spec.Axes = nil // one variant...
	spec.Nodes = []int{18, 32}
	spec.Stagnates = []int{90, 65}

	fr, err := Run(context.Background(), spec, Options{Env: flows.Env{Store: store}, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) != 4 {
		t.Fatalf("got %d points", len(fr.Points))
	}
	// Shared prefixes build exactly once: 1 system + 1 test program for
	// the single variant, plus one perf model per node (stagnation and
	// self-heal axes reuse everything).
	if got, want := store.Builds(), int64(1+1+2); got != want {
		t.Errorf("store builds = %d, want %d (1 system + 1 ATPG + 2 perf models)", got, want)
	}

	// Same variant again → the same artifact instance; a different
	// variant (scan split) → a different artifact under its own key.
	env := flows.Env{Store: store}
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	v := pts[0].Variant
	s1, err := env.SystemAt(v.NetlistKey(), v.Netlist, v.ScanChains, rtl.RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := env.SystemAt(v.NetlistKey(), v.Netlist, v.ScanChains, rtl.RescueDesign)
	if s1 != s2 {
		t.Fatal("same netlist key built twice")
	}
	if got := store.Builds(); got != 4 {
		t.Errorf("warm SystemAt calls triggered builds: %d", got)
	}
	split := v
	split.ScanChains = 4
	if split.NetlistKey() == v.NetlistKey() {
		t.Fatal("different scan split must change the netlist key")
	}
	s3, err := env.SystemAt(split.NetlistKey(), split.Netlist, split.ScanChains, rtl.RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("different variants collided in the store")
	}
	if s3.Chain.NumChains != 4 {
		t.Fatalf("variant build ignored the scan split: %d chains", s3.Chain.NumChains)
	}
}

// TestControlCancelPoint pins per-point cancellation: the canceled point
// reports canceled, everything else completes, and unknown digests are
// refused.
func TestControlCancelPoint(t *testing.T) {
	spec := tinySpec()
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewControl()
	if ctl.CancelPoint("nope") {
		t.Fatal("unknown digest should be refused before registration too")
	}
	// Cancel the second point before the run starts: registration makes
	// the digest known, and the pre-armed cancel takes effect when the
	// point is scheduled.
	done := make(chan struct{})
	var fr *Frontier
	var runErr error
	go func() {
		defer close(done)
		fr, runErr = Run(context.Background(), spec, Options{
			Env:     flows.Env{Store: flows.NewStore()},
			Control: ctl,
			OnPoint: func(ev PointEvent) {
				if ev.Index == 0 && ev.Phase == "start" {
					if !ctl.CancelPoint(pts[1].Digest) {
						t.Error("registered digest refused")
					}
				}
			},
		})
	}()
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !fr.Points[1].Canceled {
		t.Fatal("point 1 should be canceled")
	}
	if fr.Points[0].Canceled || fr.Points[0].Error != "" || fr.Points[0].EmpYield == 0 {
		t.Fatalf("point 0 should have completed normally: %+v", fr.Points[0])
	}
	if fr.Points[1].Pareto {
		t.Fatal("canceled points cannot be on the Pareto front")
	}
}

// TestRunRemote pins the dispatch contract: a remote hook that executes
// single-point specs produces a frontier byte-identical to a local run,
// and a worker answering with the wrong point is rejected (falling back
// to local execution, which still converges).
func TestRunRemote(t *testing.T) {
	spec := tinySpec()
	want := refNDJSON(t)

	// Well-behaved worker: run each single-point spec against the
	// worker's shared store, exactly like a worker daemon would.
	var remoteCalls int
	var mu sync.Mutex
	workerStore := flows.NewStore()
	remote := func(ctx context.Context, one Spec, pt Point) ([]byte, error) {
		mu.Lock()
		remoteCalls++
		mu.Unlock()
		fr, err := Run(ctx, one, Options{Env: flows.Env{Store: workerStore}})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := fr.WriteNDJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	got := runNDJSON(t, spec, Options{Env: flows.Env{Store: flows.NewStore()}, Remote: remote})
	if remoteCalls != 2 {
		t.Fatalf("remote hook called %d times, want 2", remoteCalls)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote frontier differs:\n-- local --\n%s\n-- remote --\n%s", want, got)
	}

	// Lying worker: returns a different point's bytes. The engine must
	// reject the digest mismatch and fall back to local execution.
	var fallbacks int
	lyingStore := flows.NewStore()
	lying := func(ctx context.Context, one Spec, pt Point) ([]byte, error) {
		other := spec
		other.Axes = map[string][]string{"chipkill-scale": {"1.5"}}
		fr, err := Run(ctx, other, Options{Env: flows.Env{Store: lyingStore}})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		fr.WriteNDJSON(&buf)
		return buf.Bytes(), nil
	}
	got = runNDJSON(t, spec, Options{Env: flows.Env{Store: flows.NewStore()}, Remote: lying,
		OnPoint: func(ev PointEvent) {
			if ev.Phase == "fallback" {
				fallbacks++
			}
		}})
	if fallbacks == 0 {
		t.Fatal("digest mismatch should trigger local fallback")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fallback frontier differs from local run")
	}
}

// TestPaperPointMatchesFab pins the acceptance criterion that the paper
// preset reproduces the existing fab flow's numbers exactly: same fleet
// knobs, same yield, same YAT.
func TestPaperPointMatchesFab(t *testing.T) {
	var buf bytes.Buffer
	res, err := flows.Fab(context.Background(), &buf, flows.FabOpts{
		Dies: 60, Small: true, Warmup: 200, Commit: 1000,
	}, flows.Env{})
	if err != nil {
		t.Fatal(err)
	}

	spec := Spec{Presets: []string{"paper"}, Small: true, Dies: 60, Warmup: 200, Commit: 1000}
	fr, err := Run(context.Background(), spec, Options{Env: flows.Env{Store: flows.NewStore()}})
	if err != nil {
		t.Fatal(err)
	}
	p := fr.Points[0]
	rep := res.Report
	if p.EmpYield != rep.EmpYield || p.EmpYAT != rep.EmpYAT || p.AnaYield != rep.AnaYield || p.AnaYAT != rep.AnaChip.Rescue {
		t.Fatalf("paper point diverges from the fab flow:\nsweep yield %v yat %v (ana %v / %v)\nfab   yield %v yat %v (ana %v / %v)",
			p.EmpYield, p.EmpYAT, p.AnaYield, p.AnaYAT,
			rep.EmpYield, rep.EmpYAT, rep.AnaYield, rep.AnaChip.Rescue)
	}
	if p.CoreArea != rep.CoreArea || p.Cores != rep.Cores {
		t.Fatalf("paper point area diverges: sweep %v/%d, fab %v/%d", p.CoreArea, p.Cores, rep.CoreArea, rep.Cores)
	}
}

// TestFrontierRoundTrip pins that NDJSON parse→serialize is the identity,
// which is what lets remote results merge byte-identically.
func TestFrontierRoundTrip(t *testing.T) {
	raw := refNDJSON(t)
	fr, err := ParseNDJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatalf("NDJSON round trip not identity:\n-- in --\n%s\n-- out --\n%s", raw, buf.Bytes())
	}
}
