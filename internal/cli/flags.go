package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"rescue/internal/fault"
)

// FlowFlags is the flag set shared by every campaign-shaped command —
// the -workers/-timeout/-checkpoint/-resume/-chaos-cancel-after/-progress
// plumbing that used to be copy-pasted across the flow CLIs. Register it
// with AddFlowFlags (full set) or AddStudyFlags (no checkpoint machinery),
// then call Validate after flag parsing and Context to build the command
// context.
type FlowFlags struct {
	Workers    int
	Timeout    time.Duration
	Checkpoint string
	Resume     bool
	ChaosAfter int64
	Progress   bool

	hasCheckpoint bool
}

// AddFlowFlags registers the full shared flag set on fs (pass
// flag.CommandLine for a command's top-level flags) and returns the
// destination struct.
func AddFlowFlags(fs *flag.FlagSet) *FlowFlags {
	ff := addStudyFlags(fs)
	ff.hasCheckpoint = true
	fs.StringVar(&ff.Checkpoint, "checkpoint", "", "campaign checkpoint journal path (enables kill-and-resume)")
	fs.BoolVar(&ff.Resume, "resume", false, "resume a previous run from the -checkpoint journal")
	fs.Int64Var(&ff.ChaosAfter, "chaos-cancel-after", 0, "cancel after N campaign fault-sims (chaos testing; 0 = off)")
	return ff
}

// AddStudyFlags registers the subset used by the study CLIs (rescue-sim,
// rescue-yat), which run no checkpointable campaigns: -workers, -timeout,
// and -progress.
func AddStudyFlags(fs *flag.FlagSet) *FlowFlags {
	return addStudyFlags(fs)
}

func addStudyFlags(fs *flag.FlagSet) *FlowFlags {
	ff := &FlowFlags{}
	fs.IntVar(&ff.Workers, "workers", 0, "fault-simulation workers (0 = all cores)")
	fs.DurationVar(&ff.Timeout, "timeout", 0, "overall deadline (0 = none); exceeded = exit 124")
	fs.BoolVar(&ff.Progress, "progress", false, "print live campaign progress to stderr")
	return ff
}

// Validate applies the usage-error checks (exit 2 on violation) and arms
// the chaos budget. Call it right after flag parsing.
func (ff *FlowFlags) Validate() {
	CheckWorkers(ff.Workers)
	CheckTimeout(ff.Timeout)
	if ff.hasCheckpoint {
		ArmChaos(ff.ChaosAfter)
	}
}

// OpenCheckpoint opens the journal named by -checkpoint/-resume (nil when
// checkpointing is off). Only valid after Validate on a full flag set.
func (ff *FlowFlags) OpenCheckpoint() *fault.Checkpoint {
	if !ff.hasCheckpoint {
		return nil
	}
	return OpenCheckpoint(ff.Checkpoint, ff.Resume)
}

// Context builds the standard command context — SIGINT/SIGTERM cancelled
// (exit 130), deadline-bounded when -timeout is set (exit 124) — and, when
// -progress was given, attaches a throttled stderr progress printer so
// every campaign under the flow reports live percent-complete.
func (ff *FlowFlags) Context() (context.Context, context.CancelFunc) {
	ctx, stop := FlowContext(ff.Timeout)
	if ff.Progress {
		ctx = fault.WithProgress(ctx, StderrProgress())
	}
	return ctx, stop
}

// StderrProgress returns a ProgressFunc that prints campaign progress
// lines to stderr, throttled to one line per 200ms plus the completion of
// each campaign section, so multi-campaign flows stay readable in logs.
func StderrProgress() fault.ProgressFunc {
	var lastPrint atomic.Int64
	return func(done, total int64) {
		now := time.Now().UnixNano()
		if done != total {
			last := lastPrint.Load()
			if now-last < 200*int64(time.Millisecond) || !lastPrint.CompareAndSwap(last, now) {
				return
			}
		} else {
			lastPrint.Store(now)
		}
		pct := 100.0
		if total > 0 {
			pct = 100 * float64(done) / float64(total)
		}
		fmt.Fprintf(os.Stderr, "progress: %d/%d faults (%.1f%%)\n", done, total, pct)
	}
}
