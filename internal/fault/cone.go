package fault

import (
	"sort"

	"rescue/internal/netlist"
)

// Fan-out cone precomputation. A stuck-at fault seeded on net n can only
// disturb the transitive fan-out of n, so the simulator stores, per net,
// that gate set (level-sorted, so one forward sweep evaluates it in
// topological order) plus the observation points reachable through it.
// Nets whose cone exceeds the threshold store nothing and fall back to
// the full-netlist walk — for them clipping would approach the whole
// circuit anyway, and the threshold bounds cone memory.
//
// Correctness of the stored sets is pinned three ways: unit tests against
// a brute-force BFS (TestConeMatchesBruteForce), the FuzzConeBuild fuzz
// target over arbitrary random netlists, and diffcheck property P7, which
// requires the clipped engine to produce byte-identical Results to the
// forced full-walk engine and the oracle.

// buildCones fills the simCore's per-net cone CSR arrays. threshold <= 0
// disables clipping: every net is marked full-walk and no cone is stored.
func (c *simCore) buildCones(threshold int) {
	c.coneThreshold = threshold
	nNets := c.N.NumNets()
	c.coneFull = make([]bool, nNets)
	c.coneDownObs = make([]bool, nNets)
	c.coneOff = make([]int32, nNets+1)
	c.coneObsOff = make([]int32, nNets+1)
	if threshold <= 0 {
		for i := range c.coneFull {
			c.coneFull[i] = true
		}
		return
	}

	mark := make([]int32, c.N.NumGates())
	for i := range mark {
		mark[i] = -1
	}
	var stack, gbuf []netlist.GateID
	var obuf []int32
	for net := 0; net < nNets; net++ {
		gbuf = gbuf[:0]
		stack = stack[:0]
		overflow := false
		for j := c.rdrOff[net]; j < c.rdrOff[net+1]; j++ {
			g := c.rdrs[j]
			if mark[g] != int32(net) {
				mark[g] = int32(net)
				stack = append(stack, g)
			}
		}
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			gbuf = append(gbuf, g)
			if len(gbuf) > threshold {
				overflow = true
				break
			}
			out := c.gateOut[g]
			for j := c.rdrOff[out]; j < c.rdrOff[out+1]; j++ {
				r := c.rdrs[j]
				if mark[r] != int32(net) {
					mark[r] = int32(net)
					stack = append(stack, r)
				}
			}
		}
		if overflow {
			c.coneFull[net] = true
			c.coneOff[net+1] = c.coneOff[net]
			c.coneObsOff[net+1] = c.coneObsOff[net]
			continue
		}
		// Level-major order makes the stored cone a valid evaluation
		// schedule: every gate appears after all cone gates feeding it.
		sort.Slice(gbuf, func(i, j int) bool {
			if c.level[gbuf[i]] != c.level[gbuf[j]] {
				return c.level[gbuf[i]] < c.level[gbuf[j]]
			}
			return gbuf[i] < gbuf[j]
		})
		c.coneGates = append(c.coneGates, gbuf...)
		c.coneOff[net+1] = int32(len(c.coneGates))

		// Reachable observation points: those sampling the net itself,
		// plus those sampling any cone gate's output. Obs chains partition
		// the points by sampled net and the netlist is acyclic with one
		// driver per net, so no point can appear twice.
		obuf = obuf[:0]
		for oi := c.obsHead[net]; oi >= 0; oi = c.obsNext[oi] {
			obuf = append(obuf, oi)
		}
		down := false
		for _, g := range gbuf {
			for oi := c.obsHead[c.gateOut[g]]; oi >= 0; oi = c.obsNext[oi] {
				obuf = append(obuf, oi)
				down = true
			}
		}
		sort.Slice(obuf, func(i, j int) bool { return obuf[i] < obuf[j] })
		c.coneDownObs[net] = down
		c.coneObs = append(c.coneObs, obuf...)
		c.coneObsOff[net+1] = int32(len(c.coneObs))
	}
}

// ConeThreshold reports the fan-out-cone clipping threshold this
// simulator was built with (0 = clipping disabled, every fault takes the
// full-netlist walk).
func (s *Sim) ConeThreshold() int {
	if s.coneThreshold < 0 {
		return 0
	}
	return s.coneThreshold
}

// Cone returns the stored fan-out cone of net — its transitive fan-out
// gate set in (level, id) order — and whether the net overflowed the
// threshold (overflowed or clipping-disabled nets store no cone and take
// the full walk). The returned slice is a copy.
func (s *Sim) Cone(net netlist.NetID) ([]netlist.GateID, bool) {
	if s.coneFull[net] {
		return nil, true
	}
	seg := s.coneGates[s.coneOff[net]:s.coneOff[net+1]]
	return append([]netlist.GateID(nil), seg...), false
}

// ConeObs returns the observation points (netlist.ObsPoints indices)
// structurally reachable from net: those sampling the net itself or any
// gate output in its stored cone, sorted ascending. Nil for overflowed or
// clipping-disabled nets. The returned slice is a copy.
func (s *Sim) ConeObs(net netlist.NetID) []int {
	if s.coneFull[net] {
		return nil
	}
	seg := s.coneObs[s.coneObsOff[net]:s.coneObsOff[net+1]]
	out := make([]int, len(seg))
	for i, oi := range seg {
		out[i] = int(oi)
	}
	return out
}

// ConeStats summarizes the stored cone structure — the shape data behind
// the clipping win, reported by benchmarks and EXPERIMENTS.md.
type ConeStats struct {
	Threshold  int // clipping threshold the core was built with
	Nets       int // nets with a stored cone
	Overflow   int // nets whose cone exceeded the threshold (full walk)
	TotalGates int // sum of stored cone sizes
	MaxGates   int // largest stored cone
	P50        int // stored-cone size percentiles
	P90        int
	P99        int
	MeanGates  float64 // mean stored cone size
}

// ConeStats computes summary statistics over the stored cones.
func (s *Sim) ConeStats() ConeStats {
	st := ConeStats{Threshold: s.ConeThreshold()}
	if s.coneThreshold <= 0 {
		st.Overflow = len(s.coneFull)
		return st
	}
	sizes := make([]int, 0, len(s.coneFull))
	for net := range s.coneFull {
		if s.coneFull[net] {
			st.Overflow++
			continue
		}
		sz := int(s.coneOff[net+1] - s.coneOff[net])
		sizes = append(sizes, sz)
		st.TotalGates += sz
		if sz > st.MaxGates {
			st.MaxGates = sz
		}
	}
	st.Nets = len(sizes)
	if st.Nets == 0 {
		return st
	}
	sort.Ints(sizes)
	pct := func(p float64) int {
		i := int(p * float64(len(sizes)-1))
		return sizes[i]
	}
	st.P50, st.P90, st.P99 = pct(0.50), pct(0.90), pct(0.99)
	st.MeanGates = float64(st.TotalGates) / float64(st.Nets)
	return st
}
