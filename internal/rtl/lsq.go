package rtl

import (
	"fmt"

	"rescue/internal/netlist"
)

// buildLSQ models the load/store queue (Section 4.7, Figure 7). The search
// trees are pipelined into two cycles in both variants (the paper notes
// they already are, because search takes as long as L1 access): cycle 1,
// each of the two trees' sub-trees searches its half; cycle 2, each root
// combines its own two sub-tree latches. Super-components: a half and the
// sub-trees searching it form one; each root belongs to the backend way
// that uses its tree.
//
// Insertion differs: Rescue privatizes the insertion logic per half with
// redundant tail-pointer copies (ILA/ILB in Figure 7); the baseline keeps
// one shared tail pointer whose logic feeds both halves — an ICI violation
// at half granularity.
func (p *pipe) buildLSQ() {
	cfg := p.cfg
	e := cfg.LSQEntries / 2
	idxW := 1
	for 1<<uint(idxW) < cfg.LSQEntries {
		idxW++
	}

	// entry storage per half
	type lsqEntry struct {
		valid netlist.NetID
		addr  Bus
	}
	entries := [2][]lsqEntry{}
	for hf := 0; hf < 2; hf++ {
		p.comp(fmt.Sprintf("lsq.q%d", hf), "memory")
		for i := 0; i < e; i++ {
			entries[hf] = append(entries[hf], lsqEntry{
				valid: p.ffHole(fmt.Sprintf("lsq%d.e%d.valid", hf, i)),
				addr:  p.ffHoleBus(fmt.Sprintf("lsq%d.e%d.addr", hf, i), cfg.AddrW),
			})
		}
	}

	// store insertion: address from the first executing way, "is store"
	// proxy from the issued opcode. Each insertion-logic copy recomputes
	// the store signal privately from the pipeline latches (privatization:
	// no shared decode logic between the halves).
	insAddr := p.exOut[0][:cfg.AddrW]

	// mine[hf][i] = entry i of half hf captures the new store this cycle
	var mine [2][]netlist.NetID
	buildIns := func(comp string, serves []int) {
		p.comp(comp, "memory")
		isStore := p.n.And(p.findFF("ex.i0.valid"),
			p.findFF(fmt.Sprintf("issue.i0.op.q[%d]", cfg.OpW-1)))
		tail := p.ffHoleBus(comp+".tail", idxW)
		p.driveBus(tail, p.inc(tail, isStore))
		dec := p.decode(tail)
		for _, hf := range serves {
			mine[hf] = make([]netlist.NetID, e)
			for i := 0; i < e; i++ {
				slot := hf*e + i
				en := p.n.And(isStore, dec[slot])
				if p.rescue {
					// if the other half is fault-mapped, this half takes
					// every insertion: reduced-size operation
					other := p.fmapLSQ[1-hf]
					alt := p.n.And(isStore, dec[(slot+e)%cfg.LSQEntries])
					en = p.n.Or(en, p.n.And(other, alt))
					en = p.n.And(en, p.n.Not(p.fmapLSQ[hf]))
				}
				mine[hf][i] = en
			}
		}
	}
	if p.rescue {
		buildIns("lsq.ins0", []int{0})
		buildIns("lsq.ins1", []int{1})
	} else {
		buildIns("lsq.ins", []int{0, 1})
	}

	// entry next-state
	for hf := 0; hf < 2; hf++ {
		p.comp(fmt.Sprintf("lsq.q%d", hf), "memory")
		for i := 0; i < e; i++ {
			ent := entries[hf][i]
			p.drive(ent.valid, p.n.Or(ent.valid, mine[hf][i]))
			p.driveBus(ent.addr, p.muxBus(mine[hf][i], ent.addr, insAddr))
		}
	}

	// search trees: tree A serves backend group 0, tree B group 1
	keyA := p.exOut[0][:cfg.AddrW]
	keyB := p.exOut[cfg.Ways/2][:cfg.AddrW]
	subW := idxW - 1
	if subW < 1 {
		subW = 1
	}
	type subResult struct {
		found netlist.NetID
		idx   Bus
	}
	buildSub := func(tree string, hf int, key Bus) subResult {
		p.comp(fmt.Sprintf("lsq.sub%s%d", tree, hf), "memory")
		matches := make([]netlist.NetID, e)
		for i := 0; i < e; i++ {
			matches[i] = p.n.And(entries[hf][i].valid, p.eq(entries[hf][i].addr, key))
		}
		grants, any := p.priorityGrant(matches)
		// encode the grant index
		idx := make(Bus, subW)
		for bit := 0; bit < subW; bit++ {
			var terms []netlist.NetID
			for i := 0; i < e; i++ {
				if i&(1<<uint(bit)) != 0 {
					terms = append(terms, grants[i])
				}
			}
			if len(terms) == 0 {
				idx[bit] = p.n.Const(false)
			} else {
				idx[bit] = p.reduceOr(terms)
			}
		}
		pre := fmt.Sprintf("lsq.sub%s%d", tree, hf)
		return subResult{
			found: p.n.AddFF(any, pre+".found"),
			idx:   p.regBus(idx, pre+".idx"),
		}
	}
	buildRoot := func(tree string, s0, s1 subResult) {
		p.comp(fmt.Sprintf("lsq.root%s", tree), "memory")
		f0 := s0.found
		f1 := s1.found
		if p.rescue {
			// root masks results from a fault-mapped half (Section 4.7)
			f0 = p.n.And(f0, p.n.Not(p.fmapLSQ[0]))
			f1 = p.n.And(f1, p.n.Not(p.fmapLSQ[1]))
		}
		found := p.n.Or(f0, f1)
		idx := p.muxBus(f1, s0.idx, s1.idx) // prefer half1 hit arbitrarily
		half := p.n.Buf(f1)
		p.n.Output(found, fmt.Sprintf("lsq.res%s.found", tree))
		p.n.Output(half, fmt.Sprintf("lsq.res%s.half", tree))
		p.outputBus(idx, fmt.Sprintf("lsq.res%s.idx", tree))
	}
	a0 := buildSub("A", 0, keyA)
	a1 := buildSub("A", 1, keyA)
	b0 := buildSub("B", 0, keyB)
	b1 := buildSub("B", 1, keyB)
	buildRoot("A", a0, a1)
	buildRoot("B", b0, b1)
}
