// Package diffcheck is the differential verification harness: it generates
// seeded random scan circuits and cross-checks every layer of the fault
// flow against independent implementations and metamorphic properties.
//
// Per seed it asserts:
//
//	P1  the event-driven simulator (fault.Sim) produces bit-identical
//	    Results — Detected, Fails, FailObs — to the brute-force oracle
//	    (fault.Oracle) on every uncollapsed fault;
//	P2  fault.Campaign at several worker counts reproduces the serial
//	    results exactly, and drop-mode detection agrees;
//	P3  a campaign killed mid-run by the chaos harness and resumed from
//	    its checkpoint journal (at a different worker count) equals an
//	    uninterrupted run;
//	P4  ICI-style function-preserving transforms (gate privatization,
//	    buffer insertion) leave the circuit functionally equivalent;
//	P5  PODEM test cubes actually detect their target fault under the
//	    oracle with all unassigned positions filled with zeros;
//	P6  union-of-failing-bits isolation is sound: with k random faults
//	    injected at once, every super-component the diagnosis reports
//	    contains an injected fault, or the die is flagged undiagnosable
//	    (chipkill) — never a confident misdiagnosis;
//	P7  cone clipping is invisible: the default cone-clipped engine, a
//	    forced full-walk engine (threshold 0), and a threshold-2 engine
//	    where most cones overflow back to the full walk all produce
//	    byte-identical full Results and agree on capped detection, for
//	    every uncollapsed fault.
//
// A seed fully names a circuit and stimuli, so any reported failure is
// replayable with `rescue-diffcheck -seed N` and shrinkable to a minimal
// configuration with -dump.
package diffcheck

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"rescue/internal/atpg"
	"rescue/internal/fab"
	"rescue/internal/fault"
	"rescue/internal/ici"
	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// Options tunes how much work each property does per seed.
type Options struct {
	// Workers lists the campaign worker counts cross-checked against the
	// serial reference (default 1, 2, 8).
	Workers []int
	// Transforms is the number of function-preserving edits P4 applies
	// (default 6).
	Transforms int
	// EquivCycles is the number of 64-lane random cycles P4 simulates
	// (default 8).
	EquivCycles int
	// ATPGFaults bounds how many collapsed faults P5 runs PODEM on
	// (default 8).
	ATPGFaults int
	// MaxBacktracks is the PODEM search budget (default 50).
	MaxBacktracks int
	// SkipCheckpoint disables P3, which arms the process-wide chaos
	// budget — required when the caller owns that global (e.g. tests
	// exercising the chaos harness directly).
	SkipCheckpoint bool
}

func (o Options) withDefaults() Options {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 8}
	}
	if o.Transforms == 0 {
		o.Transforms = 6
	}
	if o.EquivCycles == 0 {
		o.EquivCycles = 8
	}
	if o.ATPGFaults == 0 {
		o.ATPGFaults = 8
	}
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 50
	}
	return o
}

// splitmix64, the same stepping the generator uses, so stimuli are as
// reproducible as the circuits.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ConfigForSeed maps a seed to generator knobs, spreading the bits across
// the dimensions so consecutive seeds differ in shape, not just content.
func ConfigForSeed(seed uint64) netlist.RandomConfig {
	return netlist.RandomConfig{
		Seed:     seed,
		Gates:    1 + int(seed%97),
		FFs:      1 + int((seed>>8)%11),
		Inputs:   1 + int((seed>>16)%7),
		Outputs:  1 + int((seed>>24)%5),
		MaxFanIn: 2 + int((seed>>32)%5),
		Comps:    1 + int((seed>>40)%6),
	}
}

// CheckSeed runs every property for one seed.
func CheckSeed(ctx context.Context, seed uint64, opt Options) error {
	return CheckConfig(ctx, ConfigForSeed(seed), opt)
}

// CheckConfig generates the circuit named by cfg and runs the property
// set, returning the first violation (nil when all properties hold).
func CheckConfig(ctx context.Context, cfg netlist.RandomConfig, opt Options) error {
	opt = opt.withDefaults()
	seed := cfg.Seed

	n := netlist.Random(cfg)
	if err := n.Validate(); err != nil {
		return fmt.Errorf("P0 generator: invalid netlist: %w", err)
	}
	c, err := scan.Insert(n, 1+int(seed%3))
	if err != nil {
		return fmt.Errorf("P0 generator: scan insert: %w", err)
	}

	r := rng{s: seed ^ 0x6a09e667f3bcc909}
	pats := make([]*scan.Pattern, 0, 4)
	for w := 0; w < 3; w++ {
		p := c.NewPattern(64)
		for i := range p.FFVals {
			p.FFVals[i] = r.next()
		}
		for i := range p.PIVals {
			p.PIVals[i] = r.next()
		}
		pats = append(pats, p)
	}
	short := c.NewPattern(1 + int(r.next()%63))
	for i := range short.FFVals {
		short.FFVals[i] = r.next()
	}
	for i := range short.PIVals {
		short.PIVals[i] = r.next()
	}
	pats = append(pats, short)

	sim := fault.NewSim(c, pats)
	oracle := fault.NewOracle(c, pats)
	u := fault.NewUniverse(n)

	// P1: engine vs oracle, full Results, every uncollapsed fault.
	serial := make([]fault.Result, len(u.All))
	for i, f := range u.All {
		fast := sim.Run(f, 0)
		slow := oracle.Run(f, 0)
		if !reflect.DeepEqual(fast, slow) {
			return fmt.Errorf("P1 oracle: fault %v:\n  sim    %+v\n  oracle %+v", f, fast, slow)
		}
		serial[i] = fast
	}
	for _, f := range u.Collapsed {
		if fast, slow := sim.Run(f, 1), oracle.Run(f, 1); fast.Detected != slow.Detected {
			return fmt.Errorf("P1 oracle: fault %v capped: sim detected=%v oracle=%v", f, fast.Detected, slow.Detected)
		}
	}

	// P2: campaign at every worker count == serial, bit for bit.
	for _, w := range opt.Workers {
		camp := fault.NewCampaign(sim, fault.CampaignConfig{Workers: w})
		res, _, err := camp.Run(ctx, u.All)
		if err != nil {
			return fmt.Errorf("P2 campaign workers=%d: %w", w, err)
		}
		for i := range serial {
			if !reflect.DeepEqual(res[i], serial[i]) {
				return fmt.Errorf("P2 campaign workers=%d: fault %v (index %d):\n  campaign %+v\n  serial   %+v",
					w, u.All[i], i, res[i], serial[i])
			}
		}
		drop := fault.NewCampaign(sim, fault.CampaignConfig{Workers: w, Drop: true})
		dres, _, err := drop.Run(ctx, u.All)
		if err != nil {
			return fmt.Errorf("P2 campaign workers=%d drop: %w", w, err)
		}
		for i := range serial {
			if dres[i].Detected != serial[i].Detected {
				return fmt.Errorf("P2 campaign workers=%d drop: fault %v detected=%v, serial %v",
					w, u.All[i], dres[i].Detected, serial[i].Detected)
			}
		}
	}

	// P7: the cone-clipped walk is an invisible optimization. Three
	// engines over the same chain and patterns: the default build (serial
	// above, cones at DefaultConeThreshold), a forced full walk
	// (threshold 0, the reference algorithm), and a threshold-2 build
	// that drives most nets through the overflow fallback so clipped and
	// full walks interleave within one engine. Full Results must be
	// byte-identical and capped detection must agree everywhere.
	fullSim := fault.NewSimCone(c, pats, 0)
	lowSim := fault.NewSimCone(c, pats, 2)
	for i, f := range u.All {
		if got := fullSim.Run(f, 0); !reflect.DeepEqual(got, serial[i]) {
			return fmt.Errorf("P7 cone: fault %v:\n  full-walk %+v\n  clipped   %+v", f, got, serial[i])
		}
		if got := lowSim.Run(f, 0); !reflect.DeepEqual(got, serial[i]) {
			return fmt.Errorf("P7 cone: fault %v:\n  threshold-2 %+v\n  clipped     %+v", f, got, serial[i])
		}
	}
	for _, f := range u.Collapsed {
		full, low, def := fullSim.Run(f, 1), lowSim.Run(f, 1), sim.Run(f, 1)
		if full.Detected != def.Detected || low.Detected != def.Detected {
			return fmt.Errorf("P7 cone: fault %v capped: clipped=%v full-walk=%v threshold-2=%v",
				f, def.Detected, full.Detected, low.Detected)
		}
	}

	// P3: chaos kill + checkpoint resume == uninterrupted.
	if !opt.SkipCheckpoint {
		if err := checkKillResume(ctx, sim, u.All, serial, opt); err != nil {
			return err
		}
	}

	// P4: function-preserving transforms keep the circuit equivalent.
	tn := netlist.EquivTransform(n, seed, opt.Transforms)
	if err := tn.Validate(); err != nil {
		return fmt.Errorf("P4 transform: invalid netlist: %w", err)
	}
	if err := netlist.FunctionallyEquivalent(n, tn, opt.EquivCycles, seed); err != nil {
		return fmt.Errorf("P4 transform: %w", err)
	}

	// P5: PODEM cubes detect their target fault under the oracle.
	tried := 0
	for _, f := range u.Collapsed {
		if tried >= opt.ATPGFaults {
			break
		}
		cube, res := atpg.Podem(n, f, opt.MaxBacktracks)
		if res != atpg.Detected {
			continue // untestable or aborted — nothing to cross-check
		}
		tried++
		p := c.NewPattern(1)
		cube.Apply(p, 0, nil) // zero-fill the don't-cares: a real test must survive any fill
		if !fault.NewOracle(c, []*scan.Pattern{p}).Run(f, 1).Detected {
			return fmt.Errorf("P5 atpg: PODEM cube for fault %v does not detect it under the oracle (cube PI=%v FF=%v)",
				f, cube.PI, cube.FF)
		}
	}

	// P6: multi-fault isolation soundness. Inject k simultaneous faults,
	// union their failing bits (exact under ICI: one capture cycle, so a
	// fault only reaches observation points inside its own cone), diagnose
	// with the same machinery the fab flow uses, and demand that every
	// implicated component really hosts an injected fault. Random circuits
	// routinely violate ICI; those bits must surface as ambiguous
	// (chipkill), never as a confident wrong answer. Scan-cell faults are
	// the chain flush's job, not diagnosis's.
	audit := ici.Audit(n, nil)
	pr := rng{s: seed ^ 0x517cc1b727220a95}
	k := 1 + int(pr.next()%3)
	idxs := make([]int, k)
	injected := make([]netlist.Fault, k)
	for i := range idxs {
		idxs[i] = int(pr.next() % uint64(len(u.All)))
		injected[i] = u.All[idxs[i]]
	}
	if !fab.ChainFail(injected) {
		var obs []int
		seen := map[int]bool{}
		for _, i := range idxs {
			if !serial[i].Detected {
				continue
			}
			for _, oi := range serial[i].FailObs {
				if !seen[oi] {
					seen[oi] = true
					obs = append(obs, oi)
				}
			}
		}
		if supers, ambiguous := fab.Diagnose(audit, obs); !ambiguous {
			injComp := map[string]bool{}
			for _, f := range injected {
				injComp[n.CompName(n.FaultSiteComp(f))] = true
			}
			for _, s := range supers {
				if !injComp[s] {
					return fmt.Errorf("P6 isolate: faults %v (comps %v) diagnosed as %v: %q hosts no injected fault",
						injected, injComp, supers, s)
				}
			}
		}
	}

	return nil
}

// checkKillResume arms the chaos budget so a checkpointed campaign is
// interrupted roughly halfway, then resumes it from the journal at a
// different worker count and demands bit-identical results.
func checkKillResume(ctx context.Context, sim *fault.Sim, faults []netlist.Fault, serial []fault.Result, opt Options) error {
	dir, err := os.MkdirTemp("", "diffcheck-ck-")
	if err != nil {
		return fmt.Errorf("P3 resume: %w", err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "campaign.ck")

	defer fault.ChaosCancelAfterSims(0)
	fault.ChaosCancelAfterSims(int64(len(faults)/2 + 1))
	first := fault.NewCampaign(sim, fault.CampaignConfig{Workers: opt.Workers[0]})
	_, _, err = first.RunCheckpoint(ctx, fault.NewCheckpoint(path), faults)
	fault.ChaosCancelAfterSims(0)
	if err != nil && !fault.Interrupted(err) {
		return fmt.Errorf("P3 resume: interrupted run failed hard: %w", err)
	}

	ck, err := fault.LoadCheckpoint(path)
	if err != nil {
		return fmt.Errorf("P3 resume: reload journal: %w", err)
	}
	resumeWorkers := opt.Workers[len(opt.Workers)-1]
	second := fault.NewCampaign(sim, fault.CampaignConfig{Workers: resumeWorkers})
	res, st, err := second.RunCheckpoint(ctx, ck, faults)
	if err != nil {
		return fmt.Errorf("P3 resume: resumed run: %w", err)
	}
	for i := range serial {
		if !reflect.DeepEqual(res[i], serial[i]) {
			return fmt.Errorf("P3 resume: fault %v (index %d, %d rehydrated):\n  resumed %+v\n  serial  %+v",
				faults[i], i, st.Rehydrated, res[i], serial[i])
		}
	}
	return nil
}
