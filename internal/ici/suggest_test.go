package ici

import (
	"testing"
	"testing/quick"
)

func TestPlanRepairsFigure3a(t *testing.T) {
	g, _ := figure3a()
	steps, err := g.Plan(DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps planned for a violating graph")
	}
	if m := maxSuperSize(g); m > 2 {
		t.Fatalf("super of size %d remains after plan", m)
	}
	// LCX has two consumers and unit area: the planner should privatize it
	sawPriv := false
	for _, s := range steps {
		if s.Kind == PrivatizeNode {
			sawPriv = true
		}
	}
	if !sawPriv {
		t.Errorf("expected a privatization in %v", steps)
	}
}

func TestPlanPrefersSplitForLargeLogic(t *testing.T) {
	g, ids := figure3a()
	cfg := DefaultPlanConfig()
	cfg.Area = map[NodeID]float64{ids["LCX"]: 100, ids["LCW"]: 100}
	steps, err := g.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		if s.Kind == PrivatizeNode {
			t.Fatalf("planner duplicated 100-area logic: %v", steps)
		}
	}
	if m := maxSuperSize(g); m > 2 {
		t.Fatalf("super of size %d remains", m)
	}
	if LatencyCost(steps) == 0 {
		t.Fatal("splits must carry latency cost")
	}
}

func TestPlanRotatesCriticalLoop(t *testing.T) {
	// Figure 4a with the producer->combiner edges marked latency-critical
	// (the issue-wakeup loop): the planner must rotate, then privatize,
	// and never split.
	g, ids := figure4a()
	cfg := DefaultPlanConfig()
	cfg.NoSplit = map[[2]NodeID]bool{
		{ids["LCA"], ids["LCC"]}: true,
		{ids["LCB"], ids["LCC"]}: true,
	}
	steps, err := g.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxSuperSize(g); m > 2 {
		t.Fatalf("super of size %d remains", m)
	}
	sawRotate := false
	for _, s := range steps {
		if s.Kind == RotateLatch {
			sawRotate = true
		}
		if s.Kind == SplitEdge {
			if cfg.NoSplit[[2]NodeID{s.From, s.To}] {
				t.Fatalf("planner split a critical edge: %v", s)
			}
		}
	}
	if !sawRotate {
		t.Fatalf("expected rotation in %v", steps)
	}
	// and the loop still contains exactly one latch end to end: rotation
	// plus privatization add no loop latency
	if LatencyCost(steps) != 0 {
		t.Fatalf("critical loop repair must not add latency: %v", steps)
	}
}

func TestPlanFailsOnImpossibleCriticalEdge(t *testing.T) {
	// a single-consumer critical edge with no rotation shape: unfixable
	g := NewGraph()
	a := g.Add("A", Logic)
	c := g.Add("B", Logic)
	l := g.Add("L", Latch)
	in := g.Add("in", Source)
	g.Connect(in, a)
	g.Connect(a, c)
	g.Connect(c, l)
	g.Connect(l, a) // loop back so rotation candidate check runs
	cfg := DefaultPlanConfig()
	cfg.MaxSuperSize = 1 // force full independence so the edge must go
	cfg.NoSplit = map[[2]NodeID]bool{{a, c}: true}
	// B has one producer, so rotation does not apply; A has one consumer,
	// so privatization does not apply; the edge cannot be split
	if _, err := g.Plan(cfg); err == nil {
		t.Fatal("expected an unrepairable-edge error")
	}
}

// Property: the planner repairs any random DAG with default config.
func TestPlanRepairsRandomDagsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDag(seed % 10000)
		if _, err := g.Plan(DefaultPlanConfig()); err != nil {
			return false
		}
		return maxSuperSize(g) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAreaCostCountsCopies(t *testing.T) {
	g, ids := figure3a()
	cfg := DefaultPlanConfig()
	steps, err := g.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cost := AreaCost(steps, g, nil)
	if cost <= 0 {
		t.Fatalf("expected positive duplication cost, got %v (steps %v)", cost, steps)
	}
	_ = ids
}

// maxSuperSize returns the largest super-component's size.
func maxSuperSize(g *Graph) int {
	m := 0
	for _, grp := range g.SuperComponents() {
		if len(grp) > m {
			m = len(grp)
		}
	}
	return m
}
