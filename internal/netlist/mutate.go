package netlist

// Clone returns a deep copy of the netlist (lazy analysis caches are not
// carried over; they recompute on demand).
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:      n.Name,
		nets:      append([]netInfo(nil), n.nets...),
		Gates:     make([]Gate, len(n.Gates)),
		FFs:       append([]FF(nil), n.FFs...),
		Inputs:    append([]NetID(nil), n.Inputs...),
		Outputs:   append([]NetID(nil), n.Outputs...),
		compNames: append([]string(nil), n.compNames...),
		curComp:   n.curComp,
	}
	for i, g := range n.Gates {
		c.Gates[i] = Gate{Kind: g.Kind, In: append([]NetID(nil), g.In...), Out: g.Out, Comp: g.Comp}
	}
	return c
}

// reader is one consumer pin of a net: a gate input pin, or an FF D input
// (pin < 0).
type reader struct {
	gate GateID
	pin  int
	ff   FFID
}

func (n *Netlist) consumersOf(id NetID) []reader {
	var rs []reader
	for gi := range n.Gates {
		for pi, in := range n.Gates[gi].In {
			if in == id {
				rs = append(rs, reader{gate: GateID(gi), pin: pi, ff: -1})
			}
		}
	}
	for fi := range n.FFs {
		if n.FFs[fi].D == id {
			rs = append(rs, reader{gate: -1, pin: -1, ff: FFID(fi)})
		}
	}
	return rs
}

func (n *Netlist) rewire(r reader, to NetID) {
	if r.gate >= 0 {
		n.Gates[r.gate].In[r.pin] = to
	} else {
		n.FFs[r.ff].D = to
	}
	n.levelOK = false
}

// EquivTransform returns a clone of n rewritten by k random
// function-preserving edits — the netlist-level shape of the ICI logic
// privatization the paper applies to make components independently
// testable:
//
//   - gate privatization: a multi-fanout gate is duplicated (possibly into
//     a different component) and a strict subset of its readers is rewired
//     to the copy, exactly what privatizing shared logic into a consumer's
//     component does;
//   - buffer insertion: a consumer pin is fed through a fresh BUF, the
//     degenerate privatization of a wire.
//
// Primary inputs, flip-flop order, and primary outputs are untouched, so
// the result must be functionally equivalent to n index-by-index — the
// differential harness checks exactly that, catching any transform,
// evaluator, or levelization bug that breaks the equivalence.
func EquivTransform(n *Netlist, seed uint64, k int) *Netlist {
	t := n.Clone()
	r := randRNG{s: seed*0x9e3779b97f4a7c15 + 0x853c49e6748fea9b}
	for op := 0; op < k; op++ {
		if t.NumGates() > 0 && r.intn(2) == 0 && t.privatizeOne(&r) {
			continue
		}
		t.bufferOne(&r)
	}
	return t
}

// privatizeOne duplicates one multi-fanout gate and moves a strict subset
// of its readers onto the duplicate. Reports whether a candidate existed.
func (t *Netlist) privatizeOne(r *randRNG) bool {
	// bounded candidate search, not a full scan: good enough for a fuzzer
	for try := 0; try < 8; try++ {
		gi := GateID(r.intn(t.NumGates()))
		g := t.Gates[gi]
		rs := t.consumersOf(g.Out)
		if len(rs) < 2 {
			continue
		}
		t.SetCurrentComp(CompID(r.intn(t.NumComps())))
		dup := t.AddGate(g.Kind, g.In...)
		// move a random strict, non-empty subset of the readers
		moved := 1 + r.intn(len(rs)-1)
		for i := 0; i < moved; i++ {
			j := i + r.intn(len(rs)-i)
			rs[i], rs[j] = rs[j], rs[i]
			t.rewire(rs[i], dup)
		}
		return true
	}
	return false
}

// bufferOne inserts a BUF in front of one random consumer pin.
func (t *Netlist) bufferOne(r *randRNG) {
	// collect consumers lazily: FF D pins always exist (>=1 FF by
	// construction in generated netlists); gate pins when there are gates
	nPins := 0
	for gi := range t.Gates {
		nPins += len(t.Gates[gi].In)
	}
	total := nPins + t.NumFFs()
	if total == 0 {
		return
	}
	pick := r.intn(total)
	t.SetCurrentComp(CompID(r.intn(t.NumComps())))
	if pick < nPins {
		for gi := range t.Gates {
			if pick >= len(t.Gates[gi].In) {
				pick -= len(t.Gates[gi].In)
				continue
			}
			in := t.Gates[gi].In[pick]
			buf := t.AddGate(Buf, in)
			t.Gates[gi].In[pick] = buf
			t.levelOK = false
			return
		}
	}
	fi := FFID(pick - nPins)
	buf := t.AddGate(Buf, t.FFs[fi].D)
	t.BindFFD(fi, buf)
}
