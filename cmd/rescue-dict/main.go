// Command rescue-dict builds a complete fault dictionary for the Rescue
// design — every collapsed fault's syndrome (set of failing scan bits)
// under the generated test program — and optionally diagnoses an observed
// syndrome against it: the candidate faults and the super-component they
// implicate. This is the test-floor artifact real diagnosis flows use in
// place of per-part re-simulation.
//
// Usage:
//
//	rescue-dict build [-small] [-workers N] [-checkpoint path [-resume]]
//	                  [-chaos-cancel-after N] -o dict.csv
//	rescue-dict diagnose [-small] -d dict.csv -bits 12,57,103
//
// Dictionary construction fan-outs across -workers cores (0 = all); the
// dictionary is bit-identical at any worker count. The build is resilient:
// SIGINT/SIGTERM finish in-flight chunks, flush the -checkpoint journal
// (if one was given), print the partial campaign stats, and exit 130;
// rerunning with -resume rehydrates the journaled work and converges
// bit-identically to an uninterrupted build.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rescue/internal/atpg"
	"rescue/internal/cli"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/rtl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "diagnose":
		diagnose(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rescue-dict build|diagnose [flags]")
	os.Exit(cli.ExitUsage)
}

func system(ctx context.Context, small bool, workers int, ck *fault.Checkpoint) (*core.System, *core.TestProgram) {
	cfg := rtl.Default()
	if small {
		cfg = rtl.Small()
	}
	sys, err := core.Build(cfg, rtl.RescueDesign)
	if err != nil {
		cli.Fatalf("build: %v", err)
	}
	gen := atpg.DefaultGenConfig()
	gen.Workers = workers
	tp, err := sys.GenerateTestsFlow(ctx, gen, ck)
	if err != nil {
		cli.ExitFlow(err, tp.Gen.Stats, ck)
	}
	return sys, tp
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	small := fs.Bool("small", false, "use the reduced (2-way) configuration")
	workers := fs.Int("workers", 0, "fault-simulation workers (0 = all cores)")
	out := fs.String("o", "", "output CSV (required)")
	checkpoint := fs.String("checkpoint", "", "campaign checkpoint journal path (enables kill-and-resume)")
	resume := fs.Bool("resume", false, "resume a previous build from the -checkpoint journal")
	chaosAfter := fs.Int64("chaos-cancel-after", 0, "cancel after N campaign fault-sims (chaos testing; 0 = off)")
	fs.Parse(args)
	cli.CheckWorkers(*workers)
	cli.ArmChaos(*chaosAfter)
	if *out == "" {
		cli.Usagef("build: -o required")
	}
	ck := cli.OpenCheckpoint(*checkpoint, *resume)

	ctx, stop := cli.SignalContext()
	defer stop()

	sys, tp := system(ctx, *small, *workers, ck)
	fmt.Printf("building dictionary over %d collapsed faults, %d vectors...\n",
		tp.Universe.CountCollapsed(), tp.Gen.Vectors)
	d, st, err := fault.BuildDictionaryFlow(ctx, tp.Gen.Sim, tp.Universe, *workers, ck)
	if err != nil {
		cli.ExitFlow(err, st, ck)
	}
	fmt.Printf("campaign: %d fault-sims, %d word-sims, %d gate events, %d workers, %s\n",
		st.Faults, st.Words, st.Events, st.Workers, st.Wall.Round(time.Millisecond))
	f, err := os.Create(*out)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		cli.Fatalf("%v", err)
	}
	fmt.Printf("%d/%d faults detected; dictionary written to %s\n",
		d.Detected(), tp.Universe.CountCollapsed(), *out)
	_ = sys
}

func diagnose(args []string) {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	small := fs.Bool("small", false, "use the reduced (2-way) configuration")
	dict := fs.String("d", "", "dictionary CSV from `rescue-dict build` (required)")
	bits := fs.String("bits", "", "comma-separated failing observation indices (required)")
	fs.Parse(args)
	if *dict == "" || *bits == "" {
		cli.Usagef("diagnose: -d and -bits required")
	}
	f, err := os.Open(*dict)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	defer f.Close()
	d, err := fault.ReadCSV(f)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	var obs []int
	for _, p := range strings.Split(*bits, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			cli.Usagef("diagnose: bad -bits entry %q: %v", p, err)
		}
		obs = append(obs, v)
	}
	sys, tp := system(context.Background(), *small, 0, nil)
	if len(d.Syndromes) != tp.Universe.CountCollapsed() {
		cli.Fatalf("dictionary has %d rows but the design has %d faults (wrong -small?)",
			len(d.Syndromes), tp.Universe.CountCollapsed())
	}
	cands := d.Lookup(obs)
	fmt.Printf("%d candidate faults for syndrome %v\n", len(cands), obs)
	supers := map[string]int{}
	n := sys.Design.N
	for _, c := range cands {
		fsite := tp.Universe.Collapsed[c]
		comp := n.CompName(n.FaultSiteComp(fsite))
		supers[sys.Design.Grouping[comp]]++
	}
	for s, k := range supers {
		fmt.Printf("  super-component %-10s %d candidates\n", s, k)
	}
	if super, err := sys.Audit.Isolate(obs); err == nil {
		fmt.Printf("single-lookup isolation: %s\n", super)
	} else {
		fmt.Printf("single-lookup isolation: %v\n", err)
	}
}
